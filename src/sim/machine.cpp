#include "sim/machine.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"

namespace locus {

SimTime NodeApi::now() const {
  return machine_->state(self_).clock;
}

std::int32_t NodeApi::num_procs() const { return machine_->topology_.num_nodes(); }

void NodeApi::advance(SimTime ns) {
  LOCUS_ASSERT(ns >= 0);
  machine_->state(self_).clock += ns;
}

void Machine::ArrivalRing::grow() {
  // Linearize into a fresh buffer: entries [head_, head_+count_) move to
  // [0, count_). Doubling keeps pushes amortized O(1).
  std::vector<Arrival> bigger(slots_.empty() ? 8 : slots_.size() * 2);
  for (std::size_t i = 0; i < count_; ++i) {
    bigger[i] = std::move(slots_[index(i)]);
  }
  slots_ = std::move(bigger);
  head_ = 0;
}

void NodeApi::send(ProcId dst, std::int32_t type, std::int32_t bytes,
                   PayloadRef payload) {
  // Send-side ProcessTime: the processor is busy copying the message to the
  // network interface (paper §2.1).
  advance(machine_->network_->params().process_time_ns);
  Packet packet;
  packet.src = self_;
  packet.dst = dst;
  packet.type = type;
  packet.bytes = bytes;
  packet.payload = std::move(payload);
  // The node's local clock can run ahead of global event time (a whole
  // routing step executes inside one resume event), so the injection is
  // scheduled at `ready` rather than performed immediately: link and NI
  // reservations must be claimed in global time order or an early packet
  // could queue behind a chronologically later one. The packet parks in the
  // network's arena until then (no closure on the event heap).
  machine_->network_->schedule_inject(std::move(packet),
                                      machine_->state(self_).clock);
}

Machine::Machine(Topology topology, NetworkParams net_params)
    : topology_(std::move(topology)),
      nodes_(static_cast<std::size_t>(topology_.num_nodes())) {
  h_resume_ = queue_.add_handler(&Machine::on_resume_event, this);
  network_ = std::make_unique<Network>(
      topology_, net_params, queue_,
      [this](const Packet& p, SimTime arrival) { deliver(p, arrival); });
}

void Machine::set_node(ProcId proc, std::unique_ptr<Node> node) {
  LOCUS_ASSERT(proc >= 0 && proc < topology_.num_nodes());
  state(proc).program = std::move(node);
}

void Machine::set_fault_plan(const FaultPlan& plan) {
  injector_ = std::make_unique<FaultInjector>(plan);
  network_->set_fault_injector(injector_.get());
}

FaultStats Machine::fault_stats() const {
  return injector_ ? injector_->stats() : FaultStats{};
}

void Machine::set_obs(obs::Obs* o) {
  queue_.set_obs(o);
  network_->set_obs(o);
  obs_ = o;
#if LOCUS_OBS_ENABLED
  if (obs_ == nullptr) return;
  auto& reg = obs_->counters();
  obs_steps_ = reg.counter("node.steps");
  obs_delivered_ = reg.counter("node.packets_delivered");
  obs_busy_ns_ = reg.counter("node.busy_ns");
  if (obs::TraceSink* t = obs_->trace()) {
    obs_cat_node_ = t->intern("node");
    obs_n_compute_ = t->intern("compute");
    for (std::int32_t p = 0; p < topology_.num_nodes(); ++p) {
      t->set_track_name(p, "proc " + std::to_string(p));
    }
  }
#endif
}

void Machine::deliver(const Packet& packet, SimTime arrival) {
  NodeState& st = state(packet.dst);
  st.inbox.push(Arrival{arrival, arrival_seq_++, packet});
  // Wake the node: if it is mid-wire (clock > arrival) the resume lands at
  // its next between-wires boundary; if idle, at the arrival itself.
  schedule_resume(packet.dst, std::max(arrival, st.clock));
}

void Machine::schedule_resume(ProcId proc, SimTime at) {
  NodeState& st = state(proc);
  at = std::max(at, queue_.now());
  if (st.resume_pending && st.resume_at <= at) return;
  st.resume_pending = true;
  st.resume_at = at;
  queue_.schedule(at, h_resume_, static_cast<std::uint64_t>(proc),
                  static_cast<std::uint64_t>(at));
}

void Machine::on_resume_event(void* ctx, SimTime /*now*/, std::uint64_t a,
                              std::uint64_t b) {
  auto* self = static_cast<Machine*>(ctx);
  const auto proc = static_cast<ProcId>(a);
  const auto at = static_cast<SimTime>(b);
  NodeState& s = self->state(proc);
  if (!s.resume_pending || s.resume_at != at) return;  // superseded
  self->resume(proc);
}

void Machine::resume(ProcId proc) {
  NodeState& st = state(proc);
  st.resume_pending = false;
  st.clock = std::max(st.clock, queue_.now());
  if (injector_ != nullptr) {
    // An injected stall costs the node simulated time before it does any
    // work this scheduling round (packets that arrive meanwhile queue up
    // normally and are delivered below once the stall has passed).
    st.clock += injector_->stall();
  }
  NodeApi api(*this, proc);
  running_ = proc;
  const SimTime round_start = st.clock;
  static_cast<void>(round_start);
  auto finish_obs = [&](std::uint64_t delivered, bool stepped) {
    static_cast<void>(delivered);
    static_cast<void>(stepped);
    LOCUS_OBS_HOOK(if (obs_ != nullptr) {
      auto& reg = obs_->counters();
      if (delivered > 0) reg.add(0, obs_delivered_, delivered);
      if (stepped) reg.add(0, obs_steps_);
      const SimTime busy = st.clock - round_start;
      if (busy > 0) {
        reg.add(0, obs_busy_ns_, static_cast<std::uint64_t>(busy));
        if (obs::TraceSink* t = obs_->trace()) {
          t->complete(proc, obs_cat_node_, obs_n_compute_, round_start, busy);
        }
      }
    });
  };

  // Deliver everything that has arrived by the node's current local time;
  // reception handlers advance the clock, which can make further arrivals
  // due, so re-check.
  std::uint64_t delivered = 0;
  while (!st.inbox.empty() && st.inbox.front().time <= st.clock) {
    Packet packet = st.inbox.front().packet;
    st.inbox.pop_front();
    st.program->on_packet(api, packet);
    ++delivered;
  }

  if (st.program->blocked()) {
    // Sleep until the next arrival (already queued or delivered later).
    if (!st.inbox.empty()) {
      schedule_resume(proc, st.inbox.front().time);
    }
    finish_obs(delivered, /*stepped=*/false);
    running_ = -1;
    return;
  }

  const bool did_work = st.program->on_step(api);
  finish_obs(delivered, /*stepped=*/true);
  if (did_work) {
    // A node can find new work after having reported none (e.g. a dynamic
    // wire-queue owner unblocked by an arriving request).
    st.work_done = false;
    schedule_resume(proc, st.clock);
  } else {
    if (!st.work_done) {
      st.work_done = true;
      st.finish_time = st.clock;
    }
    // Idle; future arrivals must still wake us (e.g. to answer requests).
    if (!st.inbox.empty()) {
      schedule_resume(proc, std::max(st.clock, st.inbox.front().time));
    }
  }
  running_ = -1;
}

MachineStats Machine::run() {
  for (std::size_t p = 0; p < nodes_.size(); ++p) {
    LOCUS_ASSERT_MSG(nodes_[p].program != nullptr, "node program missing");
    NodeApi api(*this, static_cast<ProcId>(p));
    running_ = static_cast<ProcId>(p);
    nodes_[p].program->on_start(api);
    running_ = -1;
    schedule_resume(static_cast<ProcId>(p), nodes_[p].clock);
  }
  const SimTime last = queue_.run();

  MachineStats stats;
  stats.finish_time.reserve(nodes_.size());
  for (NodeState& st : nodes_) {
    LOCUS_ASSERT_MSG(!st.program->blocked(),
                     "deadlock: node still blocked at end of simulation");
    if (!st.work_done) {
      // Node never reported running out of work (e.g. pure reactive node).
      st.finish_time = st.clock;
    }
    stats.finish_time.push_back(st.finish_time);
    stats.completion_time = std::max(stats.completion_time, st.finish_time);
  }
  stats.drain_time = last;
  stats.events = queue_.executed();
  return stats;
}

}  // namespace locus
