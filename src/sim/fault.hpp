// Deterministic fault injection for the simulated multicomputer.
//
// A FaultPlan perturbs a run in the ways a real message passing machine can
// misbehave — update packets dropped, duplicated, delayed or reordered in
// the network, processors stalled for stretches of simulated time — while
// keeping the run reproducible: every fault decision flows through one
// seeded PRNG consumed in deterministic (event-order) sequence, so the same
// plan on the same workload produces the identical fault pattern.
//
// The plan exists to *test* the paper's loose-consistency story: the view
// checker in src/check must prove that a zero-fault run keeps the owner /
// view / delta conservation invariant, and that an injected fault (say a 5%
// drop of SendRmtData packets) is actually detected as view divergence
// rather than silently absorbed. Faults are therefore scoped by packet type
// so experiments can target one protocol transaction at a time (dropping a
// blocking-mode response would deadlock the router by design — that is a
// finding, not a bug, and tests opt into it deliberately).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/event_queue.hpp"
#include "support/rng.hpp"

namespace locus {

struct FaultPlan {
  std::uint64_t seed = 0xFA017ULL;

  /// Per-packet probability that the packet vanishes after transit (its
  /// on-wire traffic is still counted: the bytes crossed the network).
  double drop_rate = 0.0;
  /// Per-packet probability that a second copy is delivered shortly after
  /// the first (duplicate delivery, e.g. a retransmit race).
  double dup_rate = 0.0;
  /// Per-packet probability of an extra `delay_ns` of delivery latency.
  double delay_rate = 0.0;
  SimTime delay_ns = 0;
  /// Per-packet probability the packet is held back and released only after
  /// the *next* packet to the same destination is delivered (true pairwise
  /// reordering), with `reorder_hold_ns` as the release fallback when no
  /// later packet comes.
  double reorder_rate = 0.0;
  SimTime reorder_hold_ns = 1'000'000;

  /// Per-scheduling-point probability that a node stalls for `stall_ns`
  /// before doing any work (models OS noise / a slow processor).
  double stall_rate = 0.0;
  SimTime stall_ns = 0;

  /// Packet types the network faults apply to; empty = every type. Node
  /// stalls are unaffected by this filter.
  std::vector<std::int32_t> packet_types;

  /// Cap on the number of packet faults that actually fire (<= 0: no cap).
  /// Once the cap is reached every later packet is delivered cleanly without
  /// consuming PRNG state. With drop_rate 1.0, a type filter and a cap of 1
  /// this yields "drop exactly the first packet of that kind" — the
  /// deterministic single-fault scenarios the transport tests are built on.
  std::int64_t max_packet_faults = 0;

  bool packet_faults_enabled() const {
    return drop_rate > 0.0 || dup_rate > 0.0 || delay_rate > 0.0 ||
           reorder_rate > 0.0;
  }
  bool any() const { return packet_faults_enabled() || stall_rate > 0.0; }
  bool applies_to(std::int32_t type) const;

  /// Parses a `--faults=` spec: comma-separated `key:value` pairs.
  ///   drop:<rate>     dup:<rate>     reorder:<rate>
  ///   delay:<ns>      (sets delay_ns; delay_rate defaults to 1.0)
  ///   delayp:<rate>   (override the delay probability)
  ///   stall:<ns>      (sets stall_ns; stall_rate defaults to 0.05)
  ///   stallp:<rate>   seed:<n>       types:<t>[+<t>...]
  ///   max:<n>         (cap on fired packet faults; 0 = unlimited)
  /// Returns nullopt (instead of asserting) on malformed input so CLI typos
  /// surface as usage errors.
  static std::optional<FaultPlan> parse(std::string_view spec);

  /// Human-readable one-line summary of the active faults.
  std::string describe() const;
};

struct FaultStats {
  std::uint64_t packets_seen = 0;  ///< packets the filter matched
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;
  std::uint64_t stalls = 0;
  SimTime injected_delay_ns = 0;
  SimTime stall_time_ns = 0;
};

/// Draws fault decisions from the plan's seeded PRNG. Owned by the Machine;
/// consulted by the Network per packet and by the engine per node resume.
class FaultInjector {
 public:
  enum class Action : std::uint8_t {
    kDeliver,
    kDrop,
    kDuplicate,
    kDelay,
    kReorder,
  };

  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)), rng_(plan_.seed) {}

  /// Decides the fate of one packet of `type`. Consumes PRNG state only when
  /// a packet fault could fire, so a zero-rate plan is draw-for-draw
  /// identical to no plan at all.
  Action packet_action(std::int32_t type);

  /// Simulated time a node about to be scheduled loses to a stall (0 = no
  /// stall this time).
  SimTime stall();

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace locus
