// The paper's reported numbers, embedded so every bench prints measured
// values next to the published ones and EXPERIMENTS.md can be regenerated
// mechanically. Absolute values are not expected to match (synthetic
// circuits, analytic time model); orderings and ratios are.
#pragma once

#include <array>
#include <cstdint>

namespace locus::paper {

/// Table 1 — sender initiated updates, bnrE, 16 procs.
struct SenderRow {
  std::int32_t send_rmt;
  std::int32_t send_loc;
  std::int32_t ckt_height;
  std::int32_t occupancy;
  double mbytes;
  double seconds;
};
inline constexpr std::array<SenderRow, 12> kTable1 = {{
    {2, 1, 142, 426109, 0.862, 1.893},
    {2, 5, 143, 428558, 0.222, 1.515},
    {2, 10, 141, 429589, 0.140, 1.445},
    {2, 20, 145, 432360, 0.101, 1.426},
    {5, 1, 144, 425576, 0.859, 1.668},
    {5, 5, 143, 430046, 0.212, 1.306},
    {5, 10, 146, 430580, 0.133, 1.260},
    {5, 20, 145, 431366, 0.094, 1.240},
    {10, 1, 142, 426706, 0.840, 1.553},
    {10, 5, 143, 429423, 0.208, 1.282},
    {10, 10, 146, 431662, 0.128, 1.243},
    {10, 20, 145, 432169, 0.087, 1.219},
}};

/// Table 2 — non-blocking receiver initiated updates, bnrE, 16 procs.
struct ReceiverRow {
  std::int32_t req_loc;
  std::int32_t req_rmt;
  std::int32_t ckt_height;
  std::int32_t occupancy;
  double mbytes;
  double seconds;
};
inline constexpr std::array<ReceiverRow, 9> kTable2 = {{
    {1, 5, 144, 430686, 0.130, 1.166},
    {1, 10, 150, 436496, 0.056, 1.159},
    {1, 30, 151, 437956, 0.009, 1.099},
    {2, 5, 143, 431936, 0.112, 1.156},
    {2, 10, 149, 437088, 0.045, 1.126},
    {2, 30, 151, 437956, 0.009, 1.113},
    {10, 5, 142, 430868, 0.088, 1.133},
    {10, 10, 149, 437797, 0.039, 1.135},
    {10, 30, 151, 437956, 0.009, 1.097},
}};

/// §5.1.3 — the mixed schedule the paper quotes.
inline constexpr std::int32_t kMixedSendLoc = 5;
inline constexpr std::int32_t kMixedSendRmt = 2;
inline constexpr std::int32_t kMixedReqLoc = 1;
inline constexpr std::int32_t kMixedReqRmt = 5;
inline constexpr std::int32_t kMixedOccupancy = 424337;
inline constexpr double kMixedMbytes = 0.311;
/// Blocking strategies: execution time up to 75% larger than non-blocking.
inline constexpr double kBlockingMaxSlowdown = 0.75;

/// Table 3 — shm traffic vs cache line size, bnrE.
struct LineSizeRow {
  std::int32_t line_size;
  double mbytes;
};
inline constexpr std::array<LineSizeRow, 4> kTable3 = {{
    {4, 2.15},
    {8, 3.73},
    {16, 6.87},
    {32, 13.5},
}};
/// §5.2: over 80% of the shm bytes are caused by writes.
inline constexpr double kWriteFractionFloor = 0.80;
/// §5.2: shm circuit height for bnrE (about 8% better than sender MP).
inline constexpr std::int32_t kShmBnreHeight = 131;

/// Table 4 — effect of locality, message passing (sender initiated).
struct LocalityMpRow {
  const char* circuit;
  const char* method;  // "round robin", "tc30", "tc1000", "inf"
  std::int32_t ckt_height;
  double mbytes;
  double seconds;
};
inline constexpr std::array<LocalityMpRow, 8> kTable4 = {{
    {"bnrE", "round robin", 147, 0.156, 1.478},
    {"bnrE", "tc30", 141, 0.153, 1.392},
    {"bnrE", "tc1000", 141, 0.140, 1.445},
    {"bnrE", "inf", 140, 0.139, 2.468},
    {"MDC", "round robin", 150, 0.242, 2.181},
    {"MDC", "tc30", 146, 0.232, 1.768},
    {"MDC", "tc1000", 147, 0.217, 1.866},
    {"MDC", "inf", 146, 0.220, 3.684},
}};
/// §5.3.1: receiver-initiated traffic drops up to 63% going local.
inline constexpr double kReceiverLocalityTrafficDrop = 0.63;

/// Table 5 — effect of locality, shared memory (8-byte lines).
struct LocalityShmRow {
  const char* circuit;
  const char* method;
  std::int32_t ckt_height;
  double mbytes;
};
inline constexpr std::array<LocalityShmRow, 8> kTable5 = {{
    {"bnrE", "round robin", 139, 3.960},
    {"bnrE", "tc30", 134, 3.770},
    {"bnrE", "tc1000", 131, 3.730},
    {"bnrE", "inf", 139, 3.730},
    {"MDC", "round robin", 144, 4.833},
    {"MDC", "tc30", 138, 4.625},
    {"MDC", "tc1000", 143, 4.600},
    {"MDC", "inf", 143, 4.687},
}};

/// §5.3.3 — locality measure under the most local assignment.
inline constexpr double kLocalityMeasureBnre = 1.21;
inline constexpr double kLocalityMeasureMdc = 0.91;

/// Table 6 — effect of number of processors (sender initiated, bnrE).
struct ScalingRow {
  std::int32_t procs;
  std::int32_t ckt_height;
  std::int32_t occupancy;
  double mbytes;
  double seconds;
};
inline constexpr std::array<ScalingRow, 4> kTable6 = {{
    {2, 131, 415142, 0.245, 8.438},
    {4, 0, 0, 0.263, 4.378},  // height/occupancy for 4 procs illegible in scans
    {9, 143, 425426, 0.178, 2.184},
    {16, 141, 429589, 0.140, 1.445},
}};
/// §5.4 — speedup at 16 processors (relative to 2 procs, x2).
inline constexpr double kSpeedup16Bnre = 12.0;
inline constexpr double kSpeedup16Mdc = 12.8;

}  // namespace locus::paper
