// Work-stealing runner for independent deterministic simulations.
//
// Every measured artifact in this repo is produced by running many
// *independent* `Machine` / shm / coherence simulations back to back: a
// table sweep routes the same circuit under a dozen schedules, the
// differential oracle re-routes it under six engines, the packet fuzzer
// replays a thousand seeds. Each job is single-threaded and deterministic;
// nothing about the *set* is. SimPool executes such a job list on N worker
// threads and collects results by submission index, so the output of
// `run_all` is byte-identical to a serial loop regardless of thread count,
// scheduling, or steals — determinism lives in the jobs, ordering in the
// collection.
//
// Scheduling: jobs are dealt round-robin onto per-worker deques; a worker
// drains its own deque from the front and, when empty, steals from the
// back of a victim's. Queues are mutex-guarded — jobs here are whole
// simulations (milliseconds to seconds), so queue traffic is cold and a
// Chase-Lev lock-free deque would buy nothing measurable.
//
// Thread count resolution, in priority order:
//   1. the explicit constructor argument (> 0),
//   2. the process-wide default set via set_sim_threads() (bench binaries
//      wire their --threads flag here),
//   3. the LOCUS_THREADS environment variable,
//   4. serial (1 thread — the pool then runs jobs inline on the caller,
//      spawning nothing, which is the mode every existing test runs in).
//
// Hardware awareness: a run never spawns more workers than the process
// affinity mask can actually execute in parallel (numa::available_cpus) —
// on a 1-cpu host a width-8 pool runs inline rather than paying spawn,
// context-switch and steal traffic for zero parallelism, and results are
// identical either way by the determinism contract. Set
// LOCUS_POOL_IGNORE_AFFINITY=1 to force real threads anyway (the TSan
// preset does, so cross-thread edges are exercised even on small hosts).
// With LOCUS_POOL_PIN=1 (or set_pool_pinning(true)) each helper worker
// pins itself round-robin over the allowed cpus via
// numa::pin_current_thread; hosts without affinity control fall back to
// unpinned workers automatically. The caller (worker 0) is never pinned —
// its affinity outlives the pool.
//
// Memory: each worker thread owns a private PayloadArena (sim/arena.hpp,
// installed thread-locally on first payload allocation), so per-job
// payload churn never touches a shared allocator; per-worker deques are
// cache-line aligned so queue state and steal traffic don't false-share.
//
// Per-job observability: give each job its own obs::Obs (or its own shard)
// and merge after run_all returns via CounterRegistry::merge_from — the
// same post-join shard merge the threaded routers already rely on.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace locus {

/// Process-wide default worker count used by SimPool{} and the harness
/// fan-outs. `n > 0` sets it; `n == 0` resets to "resolve from
/// LOCUS_THREADS, else serial".
void set_sim_threads(int n);
/// The resolved process-wide default (>= 1).
int sim_threads();

/// Process-wide worker-pinning default. Unset (the initial state) resolves
/// from the LOCUS_POOL_PIN environment variable; set_pool_pinning overrides
/// it for the process.
void set_pool_pinning(bool on);
bool pool_pinning();

/// Index of the pool worker running the calling thread: 0 on the caller
/// (and outside any pool run), 1..N-1 on helper workers. Lets per-worker
/// instrumentation attribute work without a lookup table.
int pool_worker_index();

/// One unit of work: an independent, self-contained simulation. The
/// callable must not touch state shared with any other job in the same
/// run_all call (the pool-backed suites run under TSan to enforce this).
struct SimJob {
  std::string name;            ///< for diagnostics; may be empty
  std::function<void()> run;
};

class SimPool {
 public:
  /// `threads <= 0` resolves via sim_threads().
  explicit SimPool(int threads = 0);

  int threads() const { return threads_; }

  /// Workers a run over `jobs` jobs would actually use: threads() clamped
  /// to the job count and to the cpus the affinity mask offers (unless
  /// LOCUS_POOL_IGNORE_AFFINITY=1). 1 means the run executes inline.
  int effective_workers(std::size_t jobs) const;

  /// Runs every job exactly once and returns when all are done. Jobs are
  /// indexed by submission order; any exception is rethrown on the caller
  /// (first by job index) after all workers join.
  void run_all(std::vector<SimJob> jobs);

  /// Index-based form: invokes `fn(i)` for i in [0, n).
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Typed form with deterministic, submission-ordered collection:
  /// `result[i]` is jobs[i]()'s return value, independent of which worker
  /// ran it or in what order the steals happened.
  template <typename Result>
  std::vector<Result> run_all(std::vector<std::function<Result()>> jobs) {
    std::vector<Result> results(jobs.size());
    run_indexed(jobs.size(),
                [&](std::size_t i) { results[i] = jobs[i](); });
    return results;
  }

  /// Maps `fn` over [0, n) and collects fn(i) into slot i.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{}))> {
    std::vector<decltype(fn(std::size_t{}))> results(n);
    run_indexed(n, [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

 private:
  int threads_;
};

}  // namespace locus
