// Experiment definitions: one function per table/figure of the paper's
// evaluation (§5), each returning a printable Table with measured values
// next to the published ones. The bench binaries are thin wrappers over
// these, and the integration tests assert the qualitative claims on small
// circuits through the same code paths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "assign/assignment.hpp"
#include "circuit/circuit.hpp"
#include "coherence/protocol.hpp"
#include "msg/config.hpp"
#include "msg/driver.hpp"
#include "shm/shm_router.hpp"
#include "support/table.hpp"

namespace locus {

/// Assignment methods compared in the locality experiments (Tables 4/5).
enum class AssignMethod : std::int8_t {
  kRoundRobin,
  kThreshold30,
  kThreshold1000,
  kThresholdInf,
};
const char* assign_method_name(AssignMethod method);
Assignment make_assignment(const Circuit& circuit, const Partition& partition,
                           AssignMethod method);

/// Baseline knobs shared by every experiment. The paper's defaults: 16
/// processors in a 4x4 mesh, two routing iterations, static ThresholdCost =
/// 1000 assignment, bounding-box packets.
struct ExperimentConfig {
  std::int32_t procs = 16;
  std::int32_t iterations = 2;
  MpConfig mp_base;   ///< schedule is overridden per experiment
  ShmConfig shm_base; ///< assignment/procs overridden per experiment

  MpConfig mp(const UpdateSchedule& schedule) const;
  ShmConfig shm() const;
};

// --- E1/E2/E3: update strategies (§5.1) ---
Table run_table1_sender_initiated(const Circuit& circuit,
                                  const ExperimentConfig& config = {});
Table run_table2_receiver_initiated(const Circuit& circuit,
                                    const ExperimentConfig& config = {});
/// Blocking vs non-blocking sweep plus the mixed schedule comparison.
Table run_sec513_blocking(const Circuit& circuit,
                          const ExperimentConfig& config = {});
Table run_sec513_mixed(const Circuit& circuit, const ExperimentConfig& config = {});

// --- E4/E11: shared memory traffic (§5.2, Table 3) ---
struct Table3Result {
  Table table;       ///< traffic vs line size, with paper column
  Table breakdown;   ///< per-cause byte breakdown at each line size
  double write_fraction_8b = 0.0;
};
Table3Result run_table3_line_size(const Circuit& circuit,
                                  const ExperimentConfig& config = {});

// --- E5: MP vs SHM summary (§5.2) ---
Table run_sec52_comparison(const Circuit& circuit,
                           const ExperimentConfig& config = {});

// --- E6/E7: locality (§5.3, Tables 4/5) ---
Table run_table4_locality_mp(const Circuit& bnre, const Circuit& mdc,
                             const ExperimentConfig& config = {});
/// The §5.3.1 receiver-initiated locality traffic claim (63% reduction).
Table run_table4_receiver_locality(const Circuit& circuit,
                                   const ExperimentConfig& config = {});
Table run_table5_locality_shm(const Circuit& bnre, const Circuit& mdc,
                              const ExperimentConfig& config = {});

// --- E8: locality measure (§5.3.3) ---
Table run_locality_measure(const Circuit& bnre, const Circuit& mdc,
                           const ExperimentConfig& config = {});

// --- E9/E10: scaling (§5.4, Table 6) ---
Table run_table6_scaling(const Circuit& circuit, const ExperimentConfig& config = {});
Table run_speedup(const Circuit& bnre, const Circuit& mdc,
                  const ExperimentConfig& config = {});

// --- E13: scale tier (ISSUE 8) — Table 6's sweep extended to 64-256
//     virtual processors on hierarchical 10k-1M wire circuits with sharded
//     views and region-batched update packets ---
/// How the sweep hands wires to processors (DESIGN.md §11):
///   kGeographic       static ThresholdCost-infinity assignment (the ISSUE 8
///                     baseline — fully local, but load follows geography),
///   kDynamicFifo      the legacy §4.2 master queue (FIFO grants, one wire
///                     per round trip),
///   kDynamicLocality  extended protocol: locality-scored batched grants,
///   kDynamicSteal     kDynamicLocality plus neighbor stealing.
enum class ScaleAssignMode : std::int8_t {
  kGeographic,
  kDynamicFifo,
  kDynamicLocality,
  kDynamicSteal,
};
const char* scale_assign_mode_name(ScaleAssignMode mode);

struct ScaleSweepOptions {
  std::vector<std::int32_t> wire_counts{10'000};
  std::vector<std::int32_t> proc_counts{16, 64};
  /// Assignment policies to sweep per wires x procs combination.
  std::vector<ScaleAssignMode> modes{ScaleAssignMode::kGeographic};
  std::uint64_t seed = 0x5CA1EULL;
  std::int32_t iterations = 2;
  /// Grant batch for the dynamic locality/steal modes (cost-budgeted:
  /// a grant carries about this many mean-cost wires' worth of work).
  std::int32_t grant_batch = 16;
  /// Roam radius in mesh hops for the locality/steal modes: bounds how many
  /// distinct thieves replicate any donor region's tiles, which is what
  /// keeps dynamic resident memory near the geographic baseline.
  std::int32_t locality_radius = 2;
  /// Tiled per-processor views (memory bounded by what each node touches).
  bool sharded = true;
  /// Region-batched update packets (requires bounding-box structure).
  bool batch_updates = true;
  /// Finer than the 4x512 ShardConfig default: committed routes are thin
  /// strips, and at scale every node routes a few chip-spanning wires, so
  /// 8 KiB tiles would round each view up to nearly the whole grid. 2x128
  /// tiles (1 KiB) keep resident memory tracking the cells actually
  /// touched while leaving row chunks long enough for the SIMD reads.
  TileDims tile{2, 128};
  /// Per-link interconnect timing for every run of the sweep
  /// (sim/link_cost.hpp); the default keeps the tables byte-identical to
  /// the pre-seam sweep.
  LinkCostModelKind cost_model = LinkCostModelKind::kFixed;
};

/// Per-mode metrics of the last (largest) wires x procs combination.
struct ScaleModeMetrics {
  ScaleAssignMode mode = ScaleAssignMode::kGeographic;
  double route_rps = 0.0;
  std::uint64_t traffic_bytes = 0;
  std::int64_t resident_bytes = 0;
  std::int64_t circuit_height = 0;
  /// Load balance actually achieved: wires routed per processor.
  std::int64_t routed_min = 0;
  std::int64_t routed_max = 0;
  double routed_stddev = 0.0;
  /// Static prediction (Assignment::cost_imbalance) for kGeographic; the
  /// max/mean ratio of routed wires for the dynamic modes.
  double imbalance = 0.0;
};

struct ScaleSweepResult {
  Table table;
  /// Metrics of the last completed (largest) run of the FIRST mode in
  /// ScaleSweepOptions::modes, for bench gating. With the default modes
  /// list this is byte-identical to the pre-mode sweep.
  double headline_route_rps = 0.0;       ///< simulated wire routes per second
  std::uint64_t headline_traffic_bytes = 0;
  std::int64_t headline_resident_bytes = 0;
  std::int64_t headline_circuit_height = 0;
  /// One entry per mode for the last wires x procs combination that ran.
  std::vector<ScaleModeMetrics> headline_modes;
};

/// Sweeps proc_counts x wire_counts x modes, fanned over the process
/// SimPool (results are pool-width independent). Rows whose mesh cannot
/// band the circuit (more mesh rows than channels) are reported as skipped.
/// Columns: wires, procs, mode, CktHt, routes/sec, traffic per wire,
/// speedup vs the first proc count of that circuit in the same mode,
/// resident view memory, imbalance, and routed-wires min/max/stddev across
/// processors (the load-balance story next to the throughput story).
ScaleSweepResult run_scale_sweep(const ScaleSweepOptions& options);

/// True when two route sets are bit-identical (wire id, path cost, cells,
/// connections) — the sharded-vs-monolithic and fault-recovery invariant.
bool routes_identical(const std::vector<WireRoute>& a,
                      const std::vector<WireRoute>& b);

// --- E15: interconnect cost models (ISSUE 10) — the four MP update
//     protocols priced on {mesh, torus, fat-tree} x {fixed, md1, vc} ---
struct TopologySweepOptions {
  std::vector<std::int32_t> proc_counts{16};
  std::int32_t iterations = 2;
  std::int32_t fat_tree_arity = 2;
  /// Run with the reliable transport on and assert its conservation ledger
  /// balanced for every cell of the matrix.
  bool transport = true;
  /// Conservation checkpoint period of the per-run view-consistency
  /// checker.
  std::int32_t checkpoint_period = 4;
};

struct TopologySweepResult {
  Table table;
  /// Every run passed the view-consistency checker (and, with transport
  /// on, balanced the transport ledger) — the acceptance gate.
  bool all_ok = false;
  std::int32_t runs = 0;
  /// Summed per-link stall events across all runs (kFixed rows included:
  /// its stalls are head link waits).
  std::uint64_t total_stalls = 0;
};

/// Sweeps schedule x topology x cost model x procs, fanned over the
/// process SimPool (table bytes are pool-width independent). Columns:
/// schedule, topology, cost model, procs, CktHt, completion ms, traffic
/// KB, per-link max/mean utilization, links used, stalls, and the
/// consistency + ledger verdict.
TopologySweepResult run_topology_sweep(const Circuit& circuit,
                                       const TopologySweepOptions& options = {});

// --- E12: message software overhead (§5.1.1: packet assembly/disassembly
//     "take up to one fourth of the processing time" at frequent updates) ---
Table run_overhead_breakdown(const Circuit& circuit,
                             const ExperimentConfig& config = {});

// --- A1/A2: ablations ---
Table run_ablation_packet_structure(const Circuit& circuit,
                                    const ExperimentConfig& config = {});
Table run_ablation_protocols(const Circuit& circuit,
                             const ExperimentConfig& config = {});
Table run_ablation_topology(const Circuit& circuit,
                            const ExperimentConfig& config = {});
/// §4.2's two dynamic wire-distribution schemes (which CBS could not
/// simulate) vs the paper's static assignment.
Table run_ablation_dynamic_assignment(const Circuit& circuit,
                                      const ExperimentConfig& config = {});
/// §5.3's hierarchical shared memory argument quantified: remote-reference
/// fraction and NUMA memory time per wire assignment, plus snooping-bus
/// occupancy (§5.1.1 footnote 2).
Table run_hierarchical_shm(const Circuit& circuit,
                           const ExperimentConfig& config = {});
/// Router design ablation: pin decomposition (chain vs MST), congestion
/// pricing power, exploration width — sequential quality vs work.
Table run_ablation_router(const Circuit& circuit);
/// §3's "performing several iterations improves the final solution
/// quality": quality vs rip-up-and-reroute iteration count.
Table run_iteration_convergence(const Circuit& circuit);
/// §4.3.3's "we chose to have processors request updates for five wires at
/// a time": request lookahead sweep under the receiver schedule.
Table run_ablation_lookahead(const Circuit& circuit,
                             const ExperimentConfig& config = {});
/// §4.2's ThresholdCost knob as a continuous sweep: locality vs balance.
Table run_threshold_sweep(const Circuit& circuit,
                          const ExperimentConfig& config = {});
/// §4's central idea quantified: how stale the per-processor views end up
/// under each update schedule, next to the quality it buys.
Table run_view_staleness(const Circuit& circuit,
                         const ExperimentConfig& config = {});
/// §5.4 extended past the paper's 16 processors on a larger circuit.
Table run_scaling_large(const Circuit& circuit,
                        const ExperimentConfig& config = {});
/// Iterations x staleness: does rip-up-and-reroute still converge when the
/// views are stale? (MP sender schedule, iteration sweep.)
Table run_mp_iteration_sweep(const Circuit& circuit,
                             const ExperimentConfig& config = {});
/// The paper's footnote-3 assumption relaxed: coherence traffic with finite
/// LRU caches of various sizes vs the infinite-cache model.
Table run_ablation_cache_size(const Circuit& circuit,
                              const ExperimentConfig& config = {});
/// Robustness: the headline traffic hierarchy (shm > sender MP > receiver
/// MP) across independently seeded synthetic circuits.
Table run_seed_robustness(const ExperimentConfig& config = {});

// --- O1: observability layer (src/obs) ---
/// Runs one MP receiver-initiated run and one shm run (plus a coherence
/// replay) with the obs layer attached and tabulates each obs counter next
/// to the engine's own statistic. Every row must match exactly — the obs
/// layer observes the same events the engines already count.
Table run_obs_traffic_summary(const Circuit& circuit,
                              const ExperimentConfig& config = {});

// --- C1/C2/C3: checking subsystem (src/check) ---
/// Differential oracle: sequential vs shm vs the four message passing
/// schedules, with legality, quality-band, and view-consistency verdicts.
/// `faults` (optional) is installed into the message passing machines.
Table run_check_oracle(const Circuit& circuit, const ExperimentConfig& config = {},
                       const FaultPlan* faults = nullptr);
/// Fault-injection sweep: one row per fault class showing what the network
/// injected and which checker signature detected it.
Table run_check_faults(const Circuit& circuit, const ExperimentConfig& config = {});
/// Unlocked write-conflict scan of the shm reference trace per line size.
Table run_check_trace_scan(const Circuit& circuit,
                           const ExperimentConfig& config = {});
/// Reliable-transport recovery sweep: drop rate x update schedule with the
/// transport enabled. Each row reports the control-plane traffic the
/// recovery cost (retransmits, dedup discards, acks, overhead vs the
/// fault-free run) and asserts the convergence guarantee: routes, completion
/// time, and view staleness bit-identical to the same schedule's fault-free
/// run, with the transport ledger balanced.
Table run_fault_recovery_sweep(const Circuit& circuit,
                               const ExperimentConfig& config = {});

}  // namespace locus
