// Batch routing service: the first consumer built to *exploit* SimPool's
// scaling rather than merely tolerate it.
//
// The service replays a request file — thousands of independent route jobs
// (MP simulations under arbitrary update schedules, shm runs) tagged with a
// tenant — through the pool with admission control, and reports per-tenant
// observability counters plus a routes/sec throughput figure. It is the
// seed of the "millions of users" story from ROADMAP: many callers, many
// small independent jobs, one machine-wide pool.
//
// Determinism contract (tested at widths 1/2/8 over 50 seeds): per-job
// result lines and the merged metrics CSV are byte-identical at every pool
// width. Two mechanisms make that true: every job renders its result into
// its submission-indexed slot and owns a private CounterRegistry absorbed
// post-join in submission order; and anything host-dependent (wall time,
// admission high-water, width) lives in the report fields / the optional
// host registry, never in the deterministic artifacts.
//
// Admission control: jobs enter the pool in waves of at most
// `max_inflight`, so no more than that many jobs are ever in flight
// regardless of pool width; the observed high-water mark is published as
// `svc.inflight_high_water` on the host registry so callers (and the
// property test) can assert the bound actually held.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "msg/config.hpp"

namespace locus::obs {
class CounterRegistry;
}

namespace locus {

/// One independent job. The wire format is one line of whitespace-separated
/// fields: `kind tenant circuit seed procs schedule` where kind is mp|shm,
/// circuit is tiny|bnre|mdc (seed only varies tiny), and schedule is
/// sender:<rmt>:<loc> or receiver:<loc>:<touches>[:blocking] (ignored by
/// shm jobs). `#` starts a comment, blank lines are skipped.
struct RouteRequest {
  enum class Kind : std::uint8_t { kMp, kShm };

  Kind kind = Kind::kMp;
  std::string tenant = "default";
  std::string circuit = "tiny";
  std::uint64_t seed = 7;
  std::int32_t procs = 4;
  UpdateSchedule schedule = UpdateSchedule::sender(2, 5);
  std::string schedule_spec = "sender:2:5";  ///< as parsed/rendered
};

/// Renders a request as its wire line (round-trips through parse_request).
std::string render_request(const RouteRequest& request);

/// Parses one wire line. Returns false and sets `error` on malformed input;
/// comment/blank lines return false with an empty error.
bool parse_request(const std::string& line, RouteRequest* out,
                   std::string* error);

/// Parses a whole request file; throws std::runtime_error naming the line
/// on the first malformed entry.
std::vector<RouteRequest> parse_request_file(std::istream& in);

/// Deterministic synthetic request mix (multiple tenants, kinds, schedules
/// and tiny-circuit seeds) for benchmarks, tests and `--generate`.
std::vector<RouteRequest> generate_requests(std::size_t n,
                                            std::uint64_t seed);

struct RouteServiceOptions {
  /// Pool width (0: resolve via sim_threads()).
  int width = 0;
  /// Admission bound: maximum jobs in flight at once (>= 1).
  int max_inflight = 64;
  /// Optional host-side registry for non-deterministic service counters
  /// (`svc.inflight_high_water`, `svc.width`, `svc.waves`). Not owned.
  obs::CounterRegistry* host_obs = nullptr;
};

struct RouteServiceReport {
  std::vector<std::string> results;  ///< one line per job, submission order
  std::string metrics_csv;           ///< merged per-tenant counters
  std::size_t jobs = 0;
  std::uint64_t wires_routed = 0;    ///< summed over jobs (deterministic)
  std::uint64_t inflight_high_water = 0;
  double wall_s = 0.0;

  double routes_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(wires_routed) / wall_s : 0.0;
  }
};

/// Replays `requests` through the pool. Deterministic artifacts
/// (`results`, `metrics_csv`, `wires_routed`) are byte-identical at every
/// width; wall/throughput/high-water are host measurements.
RouteServiceReport run_route_service(const std::vector<RouteRequest>& requests,
                                     const RouteServiceOptions& options = {});

}  // namespace locus
