#include "harness/experiments.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>

#include "assign/locality.hpp"
#include "check/consistency.hpp"
#include "check/oracle.hpp"
#include "check/trace_scan.hpp"
#include "circuit/generator.hpp"
#include "coherence/bus.hpp"
#include "coherence/simulator.hpp"
#include "harness/paper_data.hpp"
#include "msg/packets.hpp"
#include "obs/obs.hpp"
#include "route/sequential.hpp"
#include "shm/numa.hpp"
#include "support/assert.hpp"

namespace locus {

const char* assign_method_name(AssignMethod method) {
  switch (method) {
    case AssignMethod::kRoundRobin: return "round robin";
    case AssignMethod::kThreshold30: return "tc30";
    case AssignMethod::kThreshold1000: return "tc1000";
    case AssignMethod::kThresholdInf: return "inf";
  }
  LOCUS_UNREACHABLE("bad AssignMethod");
}

Assignment make_assignment(const Circuit& circuit, const Partition& partition,
                           AssignMethod method) {
  switch (method) {
    case AssignMethod::kRoundRobin:
      return assign_round_robin(circuit, partition.num_regions());
    case AssignMethod::kThreshold30:
      return assign_threshold_cost(circuit, partition, 30);
    case AssignMethod::kThreshold1000:
      return assign_threshold_cost(circuit, partition, 1000);
    case AssignMethod::kThresholdInf:
      return assign_threshold_cost(circuit, partition, kThresholdInfinity);
  }
  LOCUS_UNREACHABLE("bad AssignMethod");
}

MpConfig ExperimentConfig::mp(const UpdateSchedule& schedule) const {
  MpConfig config = mp_base;
  config.schedule = schedule;
  config.iterations = iterations;
  return config;
}

ShmConfig ExperimentConfig::shm() const {
  ShmConfig config = shm_base;
  config.procs = procs;
  config.iterations = iterations;
  return config;
}

namespace {

/// The paper's usual static assignment baseline (§5.1 runs all use "the
/// same static wire assignment"; Table 4 identifies it as TC = 1000).
constexpr AssignMethod kBaselineAssign = AssignMethod::kThreshold1000;

MpRunResult run_mp(const Circuit& circuit, const ExperimentConfig& config,
                   const UpdateSchedule& schedule,
                   AssignMethod method = kBaselineAssign,
                   std::int32_t procs_override = -1) {
  const std::int32_t procs = procs_override > 0 ? procs_override : config.procs;
  const Partition partition(circuit.channels(), circuit.grids(),
                            MeshShape::for_procs(procs));
  const Assignment assignment = make_assignment(circuit, partition, method);
  return run_message_passing(circuit, partition, assignment, config.mp(schedule));
}

struct ShmTraffic {
  ShmRunResult run;
  std::vector<CoherenceTraffic> traffic;  ///< one per requested line size
};

ShmTraffic run_shm_traffic(const Circuit& circuit, const ExperimentConfig& config,
                           std::optional<AssignMethod> method,
                           const std::vector<std::int32_t>& line_sizes) {
  ShmConfig shm_config = config.shm();
  if (method.has_value()) {
    const Partition partition(circuit.channels(), circuit.grids(),
                              MeshShape::for_procs(config.procs));
    shm_config.assignment = make_assignment(circuit, partition, *method);
  }
  ShmTraffic out{.run = run_shared_memory(circuit, shm_config), .traffic = {}};
  out.traffic = sweep_line_sizes(out.run.trace, config.procs, line_sizes);
  return out;
}

}  // namespace

Table run_table1_sender_initiated(const Circuit& circuit,
                                  const ExperimentConfig& config) {
  Table t;
  t.column("SendRmt").column("SendLoc").column("CktHt").column("Occup.")
      .column("MBytes").column("Time(s)")
      .column("paper:Ht").column("paper:MB").column("paper:T");
  std::int32_t last_rmt = -1;
  for (const paper::SenderRow& row : paper::kTable1) {
    if (row.send_rmt != last_rmt && last_rmt != -1) t.separator();
    last_rmt = row.send_rmt;
    MpRunResult r = run_mp(circuit, config,
                           UpdateSchedule::sender(row.send_rmt, row.send_loc));
    t.row().cell(row.send_rmt).cell(row.send_loc)
        .cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3)
        .cell(row.ckt_height).cell(row.mbytes, 3).cell(row.seconds, 3);
  }
  return t;
}

Table run_table2_receiver_initiated(const Circuit& circuit,
                                    const ExperimentConfig& config) {
  Table t;
  t.column("ReqLoc").column("ReqRmt").column("CktHt").column("Occup.")
      .column("MBytes").column("Time(s)")
      .column("paper:Ht").column("paper:MB").column("paper:T");
  std::int32_t last_loc = -1;
  for (const paper::ReceiverRow& row : paper::kTable2) {
    if (row.req_loc != last_loc && last_loc != -1) t.separator();
    last_loc = row.req_loc;
    MpRunResult r = run_mp(circuit, config,
                           UpdateSchedule::receiver(row.req_loc, row.req_rmt));
    t.row().cell(row.req_loc).cell(row.req_rmt)
        .cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3)
        .cell(row.ckt_height).cell(row.mbytes, 3).cell(row.seconds, 3);
  }
  return t;
}

Table run_sec513_blocking(const Circuit& circuit, const ExperimentConfig& config) {
  Table t;
  t.column("ReqLoc").column("ReqRmt").column("NB time").column("B time")
      .column("slowdown").column("NB Ht").column("B Ht");
  for (const paper::ReceiverRow& row : paper::kTable2) {
    if (row.req_rmt != 5 && row.req_rmt != 10) continue;  // keep busy schedules
    MpRunResult nb = run_mp(circuit, config,
                            UpdateSchedule::receiver(row.req_loc, row.req_rmt, false));
    MpRunResult b = run_mp(circuit, config,
                           UpdateSchedule::receiver(row.req_loc, row.req_rmt, true));
    const double slowdown = nb.completion_ns == 0
                                ? 0.0
                                : static_cast<double>(b.completion_ns) /
                                          static_cast<double>(nb.completion_ns) -
                                      1.0;
    t.row().cell(row.req_loc).cell(row.req_rmt)
        .cell(nb.seconds(), 3).cell(b.seconds(), 3)
        .cell(format_fixed(slowdown * 100.0, 1) + "%")
        .cell(static_cast<long long>(nb.circuit_height))
        .cell(static_cast<long long>(b.circuit_height));
  }
  return t;
}

Table run_sec513_mixed(const Circuit& circuit, const ExperimentConfig& config) {
  UpdateSchedule mixed;
  mixed.send_loc_period = paper::kMixedSendLoc;
  mixed.send_rmt_period = paper::kMixedSendRmt;
  mixed.req_loc_requests = paper::kMixedReqLoc;
  mixed.req_rmt_touches = paper::kMixedReqRmt;

  Table t;
  t.column("schedule", Align::kLeft).column("CktHt").column("Occup.")
      .column("MBytes").column("Time(s)");
  auto add = [&](const char* name, const UpdateSchedule& schedule) {
    MpRunResult r = run_mp(circuit, config, schedule);
    t.row().cell(name).cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3);
  };
  add("sender (rmt=2, loc=5)", UpdateSchedule::sender(2, 5));
  add("receiver (loc=1, rmt=5)", UpdateSchedule::receiver(1, 5));
  add("mixed (5,2,1,5)", mixed);
  return t;
}

Table3Result run_table3_line_size(const Circuit& circuit,
                                  const ExperimentConfig& config) {
  std::vector<std::int32_t> sizes;
  for (const paper::LineSizeRow& row : paper::kTable3) sizes.push_back(row.line_size);
  ShmTraffic shm = run_shm_traffic(circuit, config, kBaselineAssign, sizes);

  Table3Result out;
  out.table.column("line size").column("MBytes").column("paper:MB")
      .column("write frac");
  out.breakdown.column("line size").column("cold fetch").column("refetch")
      .column("write fetch").column("word writes").column("flushes")
      .column("invalidations");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const CoherenceTraffic& traffic = shm.traffic[i];
    out.table.row().cell(sizes[i])
        .cell(static_cast<double>(traffic.total_bytes()) / 1e6, 2)
        .cell(paper::kTable3[i].mbytes, 2)
        .cell(traffic.write_fraction(), 2);
    out.breakdown.row().cell(sizes[i])
        .cell(format_mbytes(traffic.cold_fetch_bytes))
        .cell(format_mbytes(traffic.refetch_bytes))
        .cell(format_mbytes(traffic.write_fetch_bytes))
        .cell(format_mbytes(traffic.word_write_bytes))
        .cell(format_mbytes(traffic.read_flush_bytes + traffic.write_flush_bytes))
        .cell(static_cast<unsigned long long>(traffic.invalidation_msgs));
    if (sizes[i] == 8) out.write_fraction_8b = traffic.write_fraction();
  }
  return out;
}

Table run_sec52_comparison(const Circuit& circuit, const ExperimentConfig& config) {
  // Representative points: the paper's best-height sender schedule, the
  // lowest-traffic receiver schedule, and shm at 8-byte lines.
  MpRunResult sender = run_mp(circuit, config, UpdateSchedule::sender(2, 10));
  MpRunResult receiver = run_mp(circuit, config, UpdateSchedule::receiver(1, 30));
  ShmTraffic shm = run_shm_traffic(circuit, config, kBaselineAssign, {8});

  Table t;
  t.column("approach", Align::kLeft).column("CktHt").column("MBytes")
      .column("vs shm traffic");
  const double shm_mb = static_cast<double>(shm.traffic[0].total_bytes()) / 1e6;
  auto ratio = [&](double mb) {
    return mb == 0.0 ? std::string("-") : format_fixed(shm_mb / mb, 1) + "x";
  };
  t.row().cell("shared memory (8B lines)")
      .cell(static_cast<long long>(shm.run.circuit_height))
      .cell(shm_mb, 3).cell("1.0x");
  t.row().cell("MP sender (rmt=2, loc=10)")
      .cell(static_cast<long long>(sender.circuit_height))
      .cell(sender.mbytes(), 3).cell(ratio(sender.mbytes()));
  t.row().cell("MP receiver (loc=1, rmt=30)")
      .cell(static_cast<long long>(receiver.circuit_height))
      .cell(receiver.mbytes(), 3).cell(ratio(receiver.mbytes()));
  return t;
}

Table run_table4_locality_mp(const Circuit& bnre, const Circuit& mdc,
                             const ExperimentConfig& config) {
  Table t;
  t.column("circuit", Align::kLeft).column("method", Align::kLeft)
      .column("CktHt").column("MBytes").column("Time(s)")
      .column("paper:Ht").column("paper:MB").column("paper:T");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  for (const paper::LocalityMpRow& row : paper::kTable4) {
    const Circuit& circuit = std::string(row.circuit) == "bnrE" ? bnre : mdc;
    AssignMethod method =
        std::string(row.method) == "round robin" ? AssignMethod::kRoundRobin
        : std::string(row.method) == "tc30"      ? AssignMethod::kThreshold30
        : std::string(row.method) == "tc1000"    ? AssignMethod::kThreshold1000
                                                 : AssignMethod::kThresholdInf;
    if (method == AssignMethod::kRoundRobin &&
        std::string(row.circuit) == "MDC") {
      t.separator();
    }
    MpRunResult r = run_mp(circuit, config, schedule, method);
    t.row().cell(row.circuit).cell(row.method)
        .cell(static_cast<long long>(r.circuit_height))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3)
        .cell(row.ckt_height).cell(row.mbytes, 3).cell(row.seconds, 3);
  }
  return t;
}

Table run_table4_receiver_locality(const Circuit& circuit,
                                   const ExperimentConfig& config) {
  const UpdateSchedule schedule = UpdateSchedule::receiver(1, 5);
  MpRunResult rr = run_mp(circuit, config, schedule, AssignMethod::kRoundRobin);
  MpRunResult local = run_mp(circuit, config, schedule, AssignMethod::kThresholdInf);
  const double drop =
      rr.bytes_transferred == 0
          ? 0.0
          : 1.0 - static_cast<double>(local.bytes_transferred) /
                      static_cast<double>(rr.bytes_transferred);
  Table t;
  t.column("method", Align::kLeft).column("MBytes").column("traffic drop")
      .column("paper says");
  t.row().cell("round robin").cell(rr.mbytes(), 3).cell("-").cell("-");
  t.row().cell("fully local (inf)").cell(local.mbytes(), 3)
      .cell(format_fixed(drop * 100.0, 1) + "%")
      .cell("up to 63%");
  return t;
}

Table run_table5_locality_shm(const Circuit& bnre, const Circuit& mdc,
                              const ExperimentConfig& config) {
  Table t;
  t.column("circuit", Align::kLeft).column("method", Align::kLeft)
      .column("CktHt").column("MBytes").column("paper:Ht").column("paper:MB");
  for (const paper::LocalityShmRow& row : paper::kTable5) {
    const Circuit& circuit = std::string(row.circuit) == "bnrE" ? bnre : mdc;
    AssignMethod method =
        std::string(row.method) == "round robin" ? AssignMethod::kRoundRobin
        : std::string(row.method) == "tc30"      ? AssignMethod::kThreshold30
        : std::string(row.method) == "tc1000"    ? AssignMethod::kThreshold1000
                                                 : AssignMethod::kThresholdInf;
    if (method == AssignMethod::kRoundRobin &&
        std::string(row.circuit) == "MDC") {
      t.separator();
    }
    ShmTraffic shm = run_shm_traffic(circuit, config, method, {8});
    t.row().cell(row.circuit).cell(row.method)
        .cell(static_cast<long long>(shm.run.circuit_height))
        .cell(static_cast<double>(shm.traffic[0].total_bytes()) / 1e6, 3)
        .cell(row.ckt_height).cell(row.mbytes, 3);
  }
  return t;
}

Table run_locality_measure(const Circuit& bnre, const Circuit& mdc,
                           const ExperimentConfig& config) {
  Table t;
  t.column("circuit", Align::kLeft).column("method", Align::kLeft)
      .column("measure").column("paper");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  for (const Circuit* circuit : {&bnre, &mdc}) {
    const Partition partition(circuit->channels(), circuit->grids(),
                              MeshShape::for_procs(config.procs));
    for (AssignMethod method :
         {AssignMethod::kRoundRobin, AssignMethod::kThreshold30,
          AssignMethod::kThresholdInf}) {
      const Assignment assignment = make_assignment(*circuit, partition, method);
      MpRunResult r = run_message_passing(*circuit, partition, assignment,
                                          config.mp(schedule));
      const double measure = locality_measure(r.routes, assignment, partition);
      std::string paper_value = "-";
      if (method == AssignMethod::kThresholdInf) {
        paper_value = format_fixed(circuit == &bnre ? paper::kLocalityMeasureBnre
                                                    : paper::kLocalityMeasureMdc,
                                   2);
      }
      t.row().cell(circuit->name()).cell(assign_method_name(method))
          .cell(measure, 2).cell(paper_value);
    }
    if (circuit == &bnre) t.separator();
  }
  return t;
}

Table run_table6_scaling(const Circuit& circuit, const ExperimentConfig& config) {
  Table t;
  t.column("procs").column("CktHt").column("Occup.").column("MBytes")
      .column("Time(s)").column("paper:Ht").column("paper:MB").column("paper:T");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  for (const paper::ScalingRow& row : paper::kTable6) {
    MpRunResult r =
        run_mp(circuit, config, schedule, kBaselineAssign, row.procs);
    t.row().cell(row.procs).cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3)
        .cell(row.ckt_height == 0 ? std::string("?")
                                  : std::to_string(row.ckt_height))
        .cell(row.mbytes, 3).cell(row.seconds, 3);
  }
  return t;
}

Table run_speedup(const Circuit& bnre, const Circuit& mdc,
                  const ExperimentConfig& config) {
  Table t;
  t.column("circuit", Align::kLeft).column("procs").column("Time(s)")
      .column("speedup").column("paper@16");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  for (const Circuit* circuit : {&bnre, &mdc}) {
    double t2 = 0.0;
    for (std::int32_t procs : {2, 4, 9, 16}) {
      MpRunResult r = run_mp(*circuit, config, schedule, kBaselineAssign, procs);
      if (procs == 2) t2 = r.seconds();
      // The paper computes speedup relative to the two-processor run, x2.
      const double speedup = r.seconds() == 0.0 ? 0.0 : 2.0 * t2 / r.seconds();
      std::string paper_value = "-";
      if (procs == 16) {
        paper_value = format_fixed(circuit == &bnre ? paper::kSpeedup16Bnre
                                                    : paper::kSpeedup16Mdc,
                                   1);
      }
      t.row().cell(circuit->name()).cell(procs).cell(r.seconds(), 3)
          .cell(speedup, 1).cell(paper_value);
    }
    if (circuit == &bnre) t.separator();
  }
  return t;
}

Table run_ablation_dynamic_assignment(const Circuit& circuit,
                                      const ExperimentConfig& config) {
  Table t;
  t.column("wire distribution", Align::kLeft).column("CktHt").column("Occup.")
      .column("MBytes").column("Time(s)").column("packets");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  for (auto [name, mode] : {std::pair<const char*, WireAssignmentMode>{
                                "static (ThresholdCost=1000)",
                                WireAssignmentMode::kStatic},
                            {"dynamic, polled between wires",
                             WireAssignmentMode::kDynamicPolled},
                            {"dynamic, reception interrupts",
                             WireAssignmentMode::kDynamicInterrupt}}) {
    ExperimentConfig c = config;
    c.mp_base.assignment_mode = mode;
    MpRunResult r = run_mp(circuit, c, schedule);
    t.row().cell(name).cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3)
        .cell(static_cast<unsigned long long>(r.network.packets));
  }
  return t;
}

Table run_hierarchical_shm(const Circuit& circuit, const ExperimentConfig& config) {
  Table t;
  t.column("assignment", Align::kLeft).column("remote refs")
      .column("NUMA mem(s)").column("bus busy(s)").column("bus util");
  const Partition partition(circuit.channels(), circuit.grids(),
                            MeshShape::for_procs(config.procs));
  for (AssignMethod method :
       {AssignMethod::kRoundRobin, AssignMethod::kThreshold30,
        AssignMethod::kThreshold1000, AssignMethod::kThresholdInf}) {
    ShmTraffic shm = run_shm_traffic(circuit, config, method, {8});
    NumaEstimate numa = estimate_numa(shm.run.trace, partition);
    BusEstimate bus = estimate_bus(shm.traffic[0]);
    t.row().cell(assign_method_name(method))
        .cell(format_fixed(numa.remote_fraction() * 100.0, 1) + "%")
        .cell(static_cast<double>(numa.memory_ns) / 1e9, 3)
        .cell(static_cast<double>(bus.busy_ns()) / 1e9, 3)
        .cell(format_fixed(bus.utilization(shm.run.completion_ns) * 100.0, 1) +
              "%");
  }
  return t;
}

Table run_ablation_router(const Circuit& circuit) {
  Table t;
  t.column("router variant", Align::kLeft).column("CktHt").column("Occup.")
      .column("probes");
  auto add = [&](const char* name, const RouterParams& params) {
    SequentialParams sp;
    sp.router = params;
    SequentialResult r = route_sequential(circuit, sp);
    t.row().cell(name).cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(static_cast<long long>(r.work.probes));
  };
  RouterParams base;
  add("baseline (chain, linear, slack 1)", base);
  RouterParams mst = base;
  mst.decomposition = Decomposition::kMst;
  add("MST pin decomposition", mst);
  RouterParams quad = base;
  quad.explorer.congestion_power = 2;
  add("quadratic congestion pricing", quad);
  RouterParams thorough = base;
  thorough.explorer = ExplorerParams::thorough();
  add("thorough exploration", thorough);
  RouterParams all = base;
  all.decomposition = Decomposition::kMst;
  all.explorer = ExplorerParams::thorough();
  all.explorer.congestion_power = 2;
  add("all three combined", all);
  return t;
}

Table run_iteration_convergence(const Circuit& circuit) {
  Table t;
  t.column("iterations").column("CktHt").column("Occup.").column("probes");
  for (std::int32_t iterations : {1, 2, 3, 4, 6}) {
    SequentialParams sp;
    sp.iterations = iterations;
    SequentialResult r = route_sequential(circuit, sp);
    t.row().cell(iterations).cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(static_cast<long long>(r.work.probes));
  }
  return t;
}

Table run_ablation_lookahead(const Circuit& circuit,
                             const ExperimentConfig& config) {
  Table t;
  t.column("lookahead (wires)").column("CktHt").column("Occup.")
      .column("MBytes").column("Time(s)");
  for (std::int32_t lookahead : {1, 3, 5, 10, 20}) {
    UpdateSchedule schedule = UpdateSchedule::receiver(1, 5);
    schedule.request_lookahead = lookahead;
    MpRunResult r = run_mp(circuit, config, schedule);
    t.row().cell(lookahead).cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3);
  }
  return t;
}

Table run_threshold_sweep(const Circuit& circuit, const ExperimentConfig& config) {
  Table t;
  t.column("ThresholdCost", Align::kLeft).column("CktHt").column("MBytes")
      .column("Time(s)").column("cost imbalance");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  const Partition partition(circuit.channels(), circuit.grids(),
                            MeshShape::for_procs(config.procs));
  auto run_one = [&](const std::string& label, std::int64_t threshold) {
    const Assignment assignment =
        assign_threshold_cost(circuit, partition, threshold);
    MpRunResult r = run_message_passing(circuit, partition, assignment,
                                        config.mp(schedule));
    t.row().cell(label).cell(static_cast<long long>(r.circuit_height))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3)
        .cell(assignment.cost_imbalance(circuit), 2);
  };
  for (std::int64_t threshold : {std::int64_t{1}, std::int64_t{10},
                                 std::int64_t{30}, std::int64_t{100},
                                 std::int64_t{300}, std::int64_t{1000},
                                 std::int64_t{3000}}) {
    run_one(std::to_string(threshold), threshold);
  }
  run_one("infinity", kThresholdInfinity);
  return t;
}

Table run_view_staleness(const Circuit& circuit, const ExperimentConfig& config) {
  Table t;
  t.column("schedule", Align::kLeft).column("view MAE").column("own-region MAE")
      .column("CktHt").column("Occup.");
  auto add = [&](const char* name, const UpdateSchedule& schedule) {
    MpRunResult r = run_mp(circuit, config, schedule);
    t.row().cell(name).cell(r.view_staleness, 3)
        .cell(r.own_region_staleness, 3)
        .cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor));
  };
  add("no updates", UpdateSchedule{});
  add("sender (10,20)", UpdateSchedule::sender(10, 20));
  add("sender (2,10)", UpdateSchedule::sender(2, 10));
  add("sender (1,1)", UpdateSchedule::sender(1, 1));
  add("receiver (1,30)", UpdateSchedule::receiver(1, 30));
  add("receiver (1,5)", UpdateSchedule::receiver(1, 5));
  add("mixed (5,2,1,5)", [] {
        UpdateSchedule s = UpdateSchedule::sender(2, 5);
        s.req_loc_requests = 1;
        s.req_rmt_touches = 5;
        return s;
      }());
  return t;
}

Table run_scaling_large(const Circuit& circuit, const ExperimentConfig& config) {
  Table t;
  t.column("procs").column("CktHt").column("Occup.").column("MBytes")
      .column("Time(s)").column("speedup");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  double t4 = 0.0;
  for (std::int32_t procs : {4, 16, 36, 64}) {
    MpRunResult r = run_mp(circuit, config, schedule, kBaselineAssign, procs);
    if (procs == 4) t4 = r.seconds();
    const double speedup = r.seconds() == 0.0 ? 0.0 : 4.0 * t4 / r.seconds();
    t.row().cell(procs).cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3).cell(speedup, 1);
  }
  return t;
}

Table run_mp_iteration_sweep(const Circuit& circuit,
                             const ExperimentConfig& config) {
  Table t;
  t.column("iterations").column("CktHt").column("Occup.").column("MBytes")
      .column("Time(s)");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  for (std::int32_t iterations : {1, 2, 3, 4}) {
    ExperimentConfig c = config;
    c.iterations = iterations;
    MpRunResult r = run_mp(circuit, c, schedule);
    t.row().cell(iterations).cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3);
  }
  return t;
}

Table run_ablation_cache_size(const Circuit& circuit,
                              const ExperimentConfig& config) {
  ShmTraffic shm = run_shm_traffic(circuit, config, kBaselineAssign, {});
  Table t;
  t.column("cache per proc", Align::kLeft).column("MBytes")
      .column("evict WB MB").column("evictions");
  for (auto [name, lines] : {std::pair<const char*, std::int32_t>{"1 KB", 128},
                             {"4 KB", 512},
                             {"16 KB", 2048},
                             {"64 KB", 8192},
                             {"infinite (paper)", 0}}) {
    CoherenceParams params;
    params.line_size = 8;
    params.capacity_lines = lines;
    CoherenceSim sim(config.procs, params);
    sim.replay(shm.run.trace);
    const CoherenceTraffic& traffic = sim.traffic();
    t.row().cell(name)
        .cell(static_cast<double>(traffic.total_bytes()) / 1e6, 3)
        .cell(static_cast<double>(traffic.eviction_writeback_bytes) / 1e6, 3)
        .cell(static_cast<unsigned long long>(traffic.capacity_evictions));
  }
  return t;
}

Table run_seed_robustness(const ExperimentConfig& config) {
  Table t;
  t.column("seed", Align::kLeft).column("shm MB").column("sender MB")
      .column("receiver MB").column("hierarchy holds");
  for (std::uint64_t seed : {0xB9E5EED5ULL, 0x1ULL, 0x2ULL, 0x3ULL, 0x5EEDULL}) {
    GeneratorParams params;  // bnrE-shaped, reseeded
    params.name = "seeded";
    params.channels = 10;
    params.grids = 341;
    params.num_wires = 420;
    params.seed = seed;
    params.clusters = 24;
    params.global_fraction = 0.12;
    params.local_span_mean = 18.0;
    Circuit circuit = generate_circuit(params);

    MpRunResult sender =
        run_mp(circuit, config, UpdateSchedule::sender(2, 10));
    MpRunResult receiver =
        run_mp(circuit, config, UpdateSchedule::receiver(1, 5));
    ExperimentConfig shm_cfg = config;
    shm_cfg.shm_base.trace_dedup_reads = true;  // classification-scale runs
    ShmConfig sc = shm_cfg.shm();
    const Partition partition(circuit.channels(), circuit.grids(),
                              MeshShape::for_procs(config.procs));
    sc.assignment = assign_threshold_cost(circuit, partition, 1000);
    ShmRunResult shm = run_shared_memory(circuit, sc);
    CoherenceParams cp;
    cp.line_size = 8;
    CoherenceSim sim(config.procs, cp);
    sim.replay(shm.trace);

    const double shm_mb = static_cast<double>(sim.traffic().total_bytes()) / 1e6;
    const bool holds = shm_mb > sender.mbytes() && sender.mbytes() > receiver.mbytes();
    char label[32];
    std::snprintf(label, sizeof label, "0x%llX",
                  static_cast<unsigned long long>(seed));
    t.row().cell(label).cell(shm_mb, 3).cell(sender.mbytes(), 3)
        .cell(receiver.mbytes(), 3).cell(holds ? "yes" : "NO");
  }
  return t;
}

Table run_overhead_breakdown(const Circuit& circuit,
                             const ExperimentConfig& config) {
  Table t;
  t.column("schedule", Align::kLeft).column("routing(s)").column("msg sw(s)")
      .column("NI copy(s)").column("msg fraction");
  auto add = [&](const char* name, const UpdateSchedule& schedule) {
    MpRunResult r = run_mp(circuit, config, schedule);
    const TimeBreakdown& tb = r.time_breakdown;
    t.row().cell(name)
        .cell(static_cast<double>(tb.routing_ns) / 1e9, 3)
        .cell(static_cast<double>(tb.msg_software_ns) / 1e9, 3)
        .cell(static_cast<double>(tb.network_copy_ns) / 1e9, 3)
        .cell(format_fixed(tb.message_fraction() * 100.0, 1) + "%");
  };
  add("sender (1,1)  [most frequent]", UpdateSchedule::sender(1, 1));
  add("sender (2,5)", UpdateSchedule::sender(2, 5));
  add("sender (2,10)", UpdateSchedule::sender(2, 10));
  add("sender (10,20) [rarest]", UpdateSchedule::sender(10, 20));
  add("receiver (1,5)", UpdateSchedule::receiver(1, 5));
  add("receiver (1,30)", UpdateSchedule::receiver(1, 30));
  return t;
}

Table run_ablation_packet_structure(const Circuit& circuit,
                                    const ExperimentConfig& config) {
  Table t;
  t.column("packet structure", Align::kLeft).column("CktHt").column("MBytes")
      .column("Time(s)");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  for (auto [name, structure] :
       {std::pair<const char*, PacketStructure>{"wire based",
                                                PacketStructure::kWireBased},
        {"whole region", PacketStructure::kWholeRegion},
        {"bounding box (paper)", PacketStructure::kBoundingBox}}) {
    ExperimentConfig c = config;
    c.mp_base.packet_structure = structure;
    MpRunResult r = run_mp(circuit, c, schedule);
    t.row().cell(name).cell(static_cast<long long>(r.circuit_height))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3);
  }
  return t;
}

Table run_ablation_protocols(const Circuit& circuit,
                             const ExperimentConfig& config) {
  ShmConfig shm_config = config.shm();
  const Partition partition(circuit.channels(), circuit.grids(),
                            MeshShape::for_procs(config.procs));
  shm_config.assignment = make_assignment(circuit, partition, kBaselineAssign);
  ShmRunResult run = run_shared_memory(circuit, shm_config);

  Table t;
  t.column("protocol", Align::kLeft).column("MBytes").column("write frac")
      .column("invalidations");
  for (auto [name, protocol] :
       {std::pair<const char*, ProtocolKind>{"write back w/ invalidate (paper)",
                                             ProtocolKind::kWriteBackInvalidate},
        {"write through", ProtocolKind::kWriteThrough},
        {"Illinois MESI", ProtocolKind::kMesi},
        {"Dragon (write update)", ProtocolKind::kDragon}}) {
    // Sweep 8B and 32B lines: invalidate protocols scale with line size,
    // the update protocol does not (no refetches).
    for (std::int32_t line : {8, 32}) {
      CoherenceParams params;
      params.line_size = line;
      params.protocol = protocol;
      CoherenceSim sim(config.procs, params);
      sim.replay(run.trace);
      t.row().cell(std::string(name) + " @" + std::to_string(line) + "B")
          .cell(static_cast<double>(sim.traffic().total_bytes()) / 1e6, 3)
          .cell(sim.traffic().write_fraction(), 2)
          .cell(static_cast<unsigned long long>(sim.traffic().invalidation_msgs));
    }
  }
  return t;
}

Table run_ablation_topology(const Circuit& circuit, const ExperimentConfig& config) {
  Table t;
  t.column("topology", Align::kLeft).column("CktHt").column("MBytes")
      .column("byte-hops").column("Time(s)").column("mean latency (us)");
  // Receiver-initiated traffic reaches across the whole mesh (requests to
  // arbitrary owners), so wraparound edges actually shorten paths. CBS
  // simulated k-ary n-cubes generally; the binary 4-cube (hypercube) and
  // the 1D ring bound the mesh from both sides.
  const UpdateSchedule schedule = UpdateSchedule::receiver(1, 5);
  struct TopoCase {
    const char* name;
    Topology::Edges edges;
    std::vector<std::int32_t> dims;  // empty: match the partition mesh
  };
  // The binary n-cube only exists for power-of-two processor counts.
  std::vector<std::int32_t> cube_dims;
  for (std::int32_t p = config.procs; p > 1 && p % 2 == 0; p /= 2) {
    cube_dims.push_back(2);
  }
  const bool cube_ok =
      !cube_dims.empty() &&
      (1 << cube_dims.size()) == config.procs;
  std::vector<TopoCase> cases = {
      TopoCase{"2D mesh (paper)", Topology::Edges::kMesh, {}},
      TopoCase{"2D torus", Topology::Edges::kTorus, {}},
      TopoCase{"1D ring", Topology::Edges::kTorus, {config.procs}}};
  if (cube_ok) {
    cases.insert(cases.begin() + 2,
                 TopoCase{"binary hypercube", Topology::Edges::kTorus, cube_dims});
  }
  for (const TopoCase& tc : cases) {
    ExperimentConfig c = config;
    c.mp_base.edges = tc.edges;
    c.mp_base.topology_dims = tc.dims;
    const char* name = tc.name;
    MpRunResult r = run_mp(circuit, c, schedule);
    const double mean_latency_us =
        r.network.packets == 0
            ? 0.0
            : static_cast<double>(r.network.total_latency_ns) /
                  static_cast<double>(r.network.packets) / 1e3;
    t.row().cell(name).cell(static_cast<long long>(r.circuit_height))
        .cell(r.mbytes(), 3)
        .cell(static_cast<unsigned long long>(r.network.byte_hops))
        .cell(r.seconds(), 3).cell(mean_latency_us, 1);
  }
  return t;
}

Table run_obs_traffic_summary(const Circuit& circuit,
                              const ExperimentConfig& config) {
  Table t;
  t.column("metric", Align::kLeft).column("obs counter").column("engine stat")
      .column("match", Align::kLeft);
  auto row = [&t](const char* name, std::uint64_t o, std::uint64_t e) {
    t.row().cell(name).cell(static_cast<unsigned long long>(o))
        .cell(static_cast<unsigned long long>(e))
        .cell(o == e ? "yes" : "NO");
  };

  // MP receiver-initiated run with the obs layer attached: every counter
  // must agree with the statistic the engine already keeps.
  obs::Obs mp_obs;
  {
    const Partition partition(circuit.channels(), circuit.grids(),
                              MeshShape::for_procs(config.procs));
    const Assignment assignment =
        make_assignment(circuit, partition, kBaselineAssign);
    MpConfig mp_config = config.mp(UpdateSchedule::receiver(1, 30));
    mp_config.obs = &mp_obs;
    MpRunResult r = run_message_passing(circuit, partition, assignment, mp_config);
    auto& reg = mp_obs.counters();
    row("net.packets", reg.total("net.packets"), r.network.packets);
    row("net.bytes", reg.total("net.bytes"), r.network.bytes);
    row("net.byte_hops", reg.total("net.byte_hops"), r.network.byte_hops);
    row("mp.wires_routed", reg.total("mp.wires_routed"),
        static_cast<std::uint64_t>(r.work.wires_routed));
    row("mp.updates_suppressed", reg.total("mp.updates_suppressed"),
        static_cast<std::uint64_t>(r.updates_suppressed));
  }

  t.separator();

  // Deterministic shm run plus a coherence replay of its reference trace.
  obs::Obs shm_obs_sink;
  {
    ShmConfig shm_config = config.shm();
    shm_config.obs = &shm_obs_sink;
    ShmRunResult r = run_shared_memory(circuit, shm_config);
    auto& reg = shm_obs_sink.counters();
    row("shm.wires_routed", reg.total("shm.wires_routed"),
        static_cast<std::uint64_t>(r.work.wires_routed));
    row("shm.trace_refs", reg.total("shm.trace_refs"), r.trace.size());

    CoherenceSim sim(config.procs, CoherenceParams{});
    sim.replay(r.trace);
    sim.publish_obs(shm_obs_sink);
    row("coh.accesses", reg.total(obs::CoherenceObsNames::kAccesses),
        sim.traffic().accesses);
    row("coh.total_bytes", reg.total(obs::CoherenceObsNames::kTotalBytes),
        sim.traffic().total_bytes());
  }
  return t;
}

Table run_check_oracle(const Circuit& circuit, const ExperimentConfig& config,
                       const FaultPlan* faults) {
  OracleConfig oracle;
  oracle.procs = config.procs;
  oracle.iterations = config.iterations;
  oracle.router = config.mp_base.router;
  oracle.time = config.mp_base.time;
  oracle.faults = faults;
  const OracleResult result = run_differential_oracle(circuit, oracle);

  Table t;
  t.column("implementation", Align::kLeft).column("CktHt").column("Occup.")
      .column("legal", Align::kLeft).column("bands", Align::kLeft)
      .column("checkpoints").column("consistent", Align::kLeft)
      .column("converged", Align::kLeft).column("verdict", Align::kLeft);
  for (const OracleVariant& v : result.variants) {
    t.row().cell(v.name)
        .cell(static_cast<long long>(v.circuit_height))
        .cell(static_cast<long long>(v.occupancy_factor))
        .cell(v.legality.legal() ? "yes" : "NO")
        .cell(v.height_in_band && v.occupancy_in_band ? "in" : "OUT")
        .cell(static_cast<long long>(v.consistency.checkpoints))
        .cell(v.is_message_passing ? (v.consistency.consistent() ? "yes" : "NO")
                                   : "-")
        .cell(v.is_message_passing ? (v.consistency.converged() ? "yes" : "NO")
                                   : "-")
        .cell(v.ok() ? "OK" : "FAIL");
  }
  return t;
}

Table run_check_faults(const Circuit& circuit, const ExperimentConfig& config) {
  Table t;
  t.column("fault plan", Align::kLeft).column("injected").column("violations")
      .column("unmatched").column("inflight").column("lost pkts")
      .column("converged", Align::kLeft).column("detected", Align::kLeft);

  struct Case {
    const char* name;
    FaultPlan plan;
    bool expect_divergence;
  };
  std::vector<Case> cases;
  cases.push_back({"none", FaultPlan{}, false});
  {
    // Drops target the owner-bound delta updates: those are what the
    // conservation ledger tracks (losing a response would instead park a
    // blocking receiver — a deadlock, not a consistency divergence).
    FaultPlan p;
    p.drop_rate = 0.05;
    p.packet_types = {kMsgSendRmtData};
    cases.push_back({"drop 0.05 (deltas)", p, true});
  }
  {
    FaultPlan p;
    p.dup_rate = 0.10;
    p.packet_types = {kMsgSendRmtData};
    cases.push_back({"dup 0.10 (deltas)", p, true});
  }
  {
    FaultPlan p;
    p.delay_rate = 0.3;
    p.delay_ns = 500'000;
    cases.push_back({"delay 500us@0.3", p, false});
  }
  {
    FaultPlan p;
    p.reorder_rate = 0.2;
    cases.push_back({"reorder 0.2", p, false});
  }
  {
    FaultPlan p;
    p.stall_rate = 0.05;
    p.stall_ns = 200'000;
    cases.push_back({"stall 200us@0.05", p, false});
  }

  for (const Case& c : cases) {
    ConsistencyOptions opts;
    opts.checkpoint_period = 8;
    ViewConsistencyChecker checker(opts);
    // Frequent updates (periods 2/2) so even small circuits put enough
    // packets on the wire for the configured rates to fire.
    MpConfig mp = config.mp(UpdateSchedule::sender(2, 2));
    mp.faults = &c.plan;
    mp.observer = &checker;
    const MpRunResult run = run_message_passing(circuit, config.procs, mp);
    const ConsistencyReport& rep = checker.report();
    const std::uint64_t injected = run.faults.dropped + run.faults.duplicated +
                                   run.faults.delayed + run.faults.reordered +
                                   run.faults.stalls;
    const bool diverged = !rep.consistent() || !rep.converged();
    // Divergence is only owed when a divergence-class fault actually fired.
    const bool expect = c.expect_divergence &&
                        run.faults.dropped + run.faults.duplicated > 0;
    const bool detected_correctly = diverged == expect;
    t.row().cell(c.name)
        .cell(static_cast<unsigned long long>(injected))
        .cell(static_cast<long long>(rep.violations))
        .cell(static_cast<long long>(rep.unmatched_applies))
        .cell(static_cast<long long>(rep.final_inflight_cells))
        .cell(static_cast<long long>(rep.final_outstanding_packets))
        .cell(rep.converged() ? "yes" : "NO")
        .cell(!detected_correctly ? "WRONG" : diverged ? "divergence" : "clean");
  }
  return t;
}

Table run_check_trace_scan(const Circuit& circuit, const ExperimentConfig& config) {
  ShmConfig shm = config.shm();
  shm.capture_trace = true;
  const ShmRunResult run = run_shared_memory(circuit, shm);

  Table t;
  t.column("line B").column("refs").column("lines").column("conflicted")
      .column("ww").column("wr").column("rw")
      .column("hottest", Align::kLeft).column("histogram", Align::kLeft);
  for (std::int32_t line : {4, 8, 16, 32}) {
    TraceScanOptions opts;
    opts.line_bytes = line;
    const TraceScanReport rep = scan_trace_conflicts(run.trace, opts);
    std::string hottest = "-";
    if (!rep.hottest.empty()) {
      hottest = "line " + std::to_string(rep.hottest.front().line) + " x" +
                std::to_string(rep.hottest.front().total());
    }
    std::string histogram;
    for (std::size_t b = 0; b < rep.histogram.size(); ++b) {
      if (b > 0) histogram += "/";
      histogram += std::to_string(rep.histogram[b]);
    }
    t.row().cell(static_cast<long long>(line))
        .cell(static_cast<long long>(rep.refs))
        .cell(static_cast<long long>(rep.lines_touched))
        .cell(static_cast<long long>(rep.lines_with_conflicts))
        .cell(static_cast<long long>(rep.ww))
        .cell(static_cast<long long>(rep.wr))
        .cell(static_cast<long long>(rep.rw))
        .cell(hottest)
        .cell(histogram.empty() ? "-" : histogram);
  }
  return t;
}

}  // namespace locus
