#include "harness/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <iterator>
#include <optional>
#include <utility>

#include "assign/locality.hpp"
#include "check/consistency.hpp"
#include "check/oracle.hpp"
#include "check/trace_scan.hpp"
#include "circuit/generator.hpp"
#include "circuit/hier_generator.hpp"
#include "coherence/bus.hpp"
#include "coherence/simulator.hpp"
#include "harness/paper_data.hpp"
#include "harness/sim_pool.hpp"
#include "msg/packets.hpp"
#include "obs/obs.hpp"
#include "route/sequential.hpp"
#include "shm/numa.hpp"
#include "support/assert.hpp"

namespace locus {

const char* assign_method_name(AssignMethod method) {
  switch (method) {
    case AssignMethod::kRoundRobin: return "round robin";
    case AssignMethod::kThreshold30: return "tc30";
    case AssignMethod::kThreshold1000: return "tc1000";
    case AssignMethod::kThresholdInf: return "inf";
  }
  LOCUS_UNREACHABLE("bad AssignMethod");
}

Assignment make_assignment(const Circuit& circuit, const Partition& partition,
                           AssignMethod method) {
  switch (method) {
    case AssignMethod::kRoundRobin:
      return assign_round_robin(circuit, partition.num_regions());
    case AssignMethod::kThreshold30:
      return assign_threshold_cost(circuit, partition, 30);
    case AssignMethod::kThreshold1000:
      return assign_threshold_cost(circuit, partition, 1000);
    case AssignMethod::kThresholdInf:
      return assign_threshold_cost(circuit, partition, kThresholdInfinity);
  }
  LOCUS_UNREACHABLE("bad AssignMethod");
}

MpConfig ExperimentConfig::mp(const UpdateSchedule& schedule) const {
  MpConfig config = mp_base;
  config.schedule = schedule;
  config.iterations = iterations;
  return config;
}

ShmConfig ExperimentConfig::shm() const {
  ShmConfig config = shm_base;
  config.procs = procs;
  config.iterations = iterations;
  return config;
}

namespace {

/// The paper's usual static assignment baseline (§5.1 runs all use "the
/// same static wire assignment"; Table 4 identifies it as TC = 1000).
constexpr AssignMethod kBaselineAssign = AssignMethod::kThreshold1000;

MpRunResult run_mp(const Circuit& circuit, const ExperimentConfig& config,
                   const UpdateSchedule& schedule,
                   AssignMethod method = kBaselineAssign,
                   std::int32_t procs_override = -1) {
  const std::int32_t procs = procs_override > 0 ? procs_override : config.procs;
  const Partition partition(circuit.channels(), circuit.grids(),
                            MeshShape::for_procs(procs));
  const Assignment assignment = make_assignment(circuit, partition, method);
  return run_message_passing(circuit, partition, assignment, config.mp(schedule));
}

struct ShmTraffic {
  ShmRunResult run;
  std::vector<CoherenceTraffic> traffic;  ///< one per requested line size
};

ShmTraffic run_shm_traffic(const Circuit& circuit, const ExperimentConfig& config,
                           std::optional<AssignMethod> method,
                           const std::vector<std::int32_t>& line_sizes) {
  ShmConfig shm_config = config.shm();
  if (method.has_value()) {
    const Partition partition(circuit.channels(), circuit.grids(),
                              MeshShape::for_procs(config.procs));
    shm_config.assignment = make_assignment(circuit, partition, *method);
  }
  ShmTraffic out{.run = run_shared_memory(circuit, shm_config), .traffic = {}};
  out.traffic = sweep_line_sizes(out.run.trace, config.procs, line_sizes);
  return out;
}

/// Fans `fn(i)` for i in [0, n) onto the process-default SimPool
/// (set_sim_threads / LOCUS_THREADS / --threads) and returns the results in
/// index order. The table building that follows every fan-out stays serial
/// and consumes results in submission order, so each table is byte-identical
/// to the old serial loop at any thread count. Results are wrapped in
/// optional because several result types (CostArray members) have no
/// default constructor.
template <typename Fn>
auto pool_map(std::size_t n, Fn&& fn) {
  using Result = decltype(fn(std::size_t{}));
  std::vector<std::optional<Result>> out(n);
  SimPool().run_indexed(n, [&](std::size_t i) { out[i].emplace(fn(i)); });
  return out;
}

/// Table 4/5 rows name their assignment method; map back to the enum.
AssignMethod method_from_name(const char* name) {
  return std::string(name) == "round robin" ? AssignMethod::kRoundRobin
         : std::string(name) == "tc30"      ? AssignMethod::kThreshold30
         : std::string(name) == "tc1000"    ? AssignMethod::kThreshold1000
                                            : AssignMethod::kThresholdInf;
}

}  // namespace

Table run_table1_sender_initiated(const Circuit& circuit,
                                  const ExperimentConfig& config) {
  Table t;
  t.column("SendRmt").column("SendLoc").column("CktHt").column("Occup.")
      .column("MBytes").column("Time(s)")
      .column("paper:Ht").column("paper:MB").column("paper:T");
  const auto runs = pool_map(paper::kTable1.size(), [&](std::size_t i) {
    const paper::SenderRow& row = paper::kTable1[i];
    return run_mp(circuit, config,
                  UpdateSchedule::sender(row.send_rmt, row.send_loc));
  });
  std::int32_t last_rmt = -1;
  for (std::size_t i = 0; i < paper::kTable1.size(); ++i) {
    const paper::SenderRow& row = paper::kTable1[i];
    if (row.send_rmt != last_rmt && last_rmt != -1) t.separator();
    last_rmt = row.send_rmt;
    const MpRunResult& r = *runs[i];
    t.row().cell(row.send_rmt).cell(row.send_loc)
        .cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3)
        .cell(row.ckt_height).cell(row.mbytes, 3).cell(row.seconds, 3);
  }
  return t;
}

Table run_table2_receiver_initiated(const Circuit& circuit,
                                    const ExperimentConfig& config) {
  Table t;
  t.column("ReqLoc").column("ReqRmt").column("CktHt").column("Occup.")
      .column("MBytes").column("Time(s)")
      .column("paper:Ht").column("paper:MB").column("paper:T");
  const auto runs = pool_map(paper::kTable2.size(), [&](std::size_t i) {
    const paper::ReceiverRow& row = paper::kTable2[i];
    return run_mp(circuit, config,
                  UpdateSchedule::receiver(row.req_loc, row.req_rmt));
  });
  std::int32_t last_loc = -1;
  for (std::size_t i = 0; i < paper::kTable2.size(); ++i) {
    const paper::ReceiverRow& row = paper::kTable2[i];
    if (row.req_loc != last_loc && last_loc != -1) t.separator();
    last_loc = row.req_loc;
    const MpRunResult& r = *runs[i];
    t.row().cell(row.req_loc).cell(row.req_rmt)
        .cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3)
        .cell(row.ckt_height).cell(row.mbytes, 3).cell(row.seconds, 3);
  }
  return t;
}

Table run_sec513_blocking(const Circuit& circuit, const ExperimentConfig& config) {
  Table t;
  t.column("ReqLoc").column("ReqRmt").column("NB time").column("B time")
      .column("slowdown").column("NB Ht").column("B Ht");
  std::vector<paper::ReceiverRow> rows;
  for (const paper::ReceiverRow& row : paper::kTable2) {
    if (row.req_rmt != 5 && row.req_rmt != 10) continue;  // keep busy schedules
    rows.push_back(row);
  }
  // Two independent runs (non-blocking at even indices, blocking at odd)
  // per schedule row.
  const auto runs = pool_map(rows.size() * 2, [&](std::size_t i) {
    const paper::ReceiverRow& row = rows[i / 2];
    return run_mp(circuit, config,
                  UpdateSchedule::receiver(row.req_loc, row.req_rmt, i % 2 == 1));
  });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const paper::ReceiverRow& row = rows[i];
    const MpRunResult& nb = *runs[2 * i];
    const MpRunResult& b = *runs[2 * i + 1];
    const double slowdown = nb.completion_ns == 0
                                ? 0.0
                                : static_cast<double>(b.completion_ns) /
                                          static_cast<double>(nb.completion_ns) -
                                      1.0;
    t.row().cell(row.req_loc).cell(row.req_rmt)
        .cell(nb.seconds(), 3).cell(b.seconds(), 3)
        .cell(format_fixed(slowdown * 100.0, 1) + "%")
        .cell(static_cast<long long>(nb.circuit_height))
        .cell(static_cast<long long>(b.circuit_height));
  }
  return t;
}

Table run_sec513_mixed(const Circuit& circuit, const ExperimentConfig& config) {
  UpdateSchedule mixed;
  mixed.send_loc_period = paper::kMixedSendLoc;
  mixed.send_rmt_period = paper::kMixedSendRmt;
  mixed.req_loc_requests = paper::kMixedReqLoc;
  mixed.req_rmt_touches = paper::kMixedReqRmt;

  Table t;
  t.column("schedule", Align::kLeft).column("CktHt").column("Occup.")
      .column("MBytes").column("Time(s)");
  const std::pair<const char*, UpdateSchedule> cases[] = {
      {"sender (rmt=2, loc=5)", UpdateSchedule::sender(2, 5)},
      {"receiver (loc=1, rmt=5)", UpdateSchedule::receiver(1, 5)},
      {"mixed (5,2,1,5)", mixed},
  };
  const auto runs = pool_map(std::size(cases), [&](std::size_t i) {
    return run_mp(circuit, config, cases[i].second);
  });
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const MpRunResult& r = *runs[i];
    t.row().cell(cases[i].first).cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3);
  }
  return t;
}

Table3Result run_table3_line_size(const Circuit& circuit,
                                  const ExperimentConfig& config) {
  std::vector<std::int32_t> sizes;
  for (const paper::LineSizeRow& row : paper::kTable3) sizes.push_back(row.line_size);
  ShmTraffic shm = run_shm_traffic(circuit, config, kBaselineAssign, sizes);

  Table3Result out;
  out.table.column("line size").column("MBytes").column("paper:MB")
      .column("write frac");
  out.breakdown.column("line size").column("cold fetch").column("refetch")
      .column("write fetch").column("word writes").column("flushes")
      .column("invalidations");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const CoherenceTraffic& traffic = shm.traffic[i];
    out.table.row().cell(sizes[i])
        .cell(static_cast<double>(traffic.total_bytes()) / 1e6, 2)
        .cell(paper::kTable3[i].mbytes, 2)
        .cell(traffic.write_fraction(), 2);
    out.breakdown.row().cell(sizes[i])
        .cell(format_mbytes(traffic.cold_fetch_bytes))
        .cell(format_mbytes(traffic.refetch_bytes))
        .cell(format_mbytes(traffic.write_fetch_bytes))
        .cell(format_mbytes(traffic.word_write_bytes))
        .cell(format_mbytes(traffic.read_flush_bytes + traffic.write_flush_bytes))
        .cell(static_cast<unsigned long long>(traffic.invalidation_msgs));
    if (sizes[i] == 8) out.write_fraction_8b = traffic.write_fraction();
  }
  return out;
}

Table run_sec52_comparison(const Circuit& circuit, const ExperimentConfig& config) {
  // Representative points: the paper's best-height sender schedule, the
  // lowest-traffic receiver schedule, and shm at 8-byte lines. Three
  // independent engines, so heterogeneous pool jobs rather than a map.
  std::optional<MpRunResult> sender_run;
  std::optional<MpRunResult> receiver_run;
  std::optional<ShmTraffic> shm_run;
  SimPool().run_all({
      {"sec52:sender", [&] {
         sender_run.emplace(run_mp(circuit, config, UpdateSchedule::sender(2, 10)));
       }},
      {"sec52:receiver", [&] {
         receiver_run.emplace(
             run_mp(circuit, config, UpdateSchedule::receiver(1, 30)));
       }},
      {"sec52:shm", [&] {
         shm_run.emplace(run_shm_traffic(circuit, config, kBaselineAssign, {8}));
       }},
  });
  const MpRunResult& sender = *sender_run;
  const MpRunResult& receiver = *receiver_run;
  const ShmTraffic& shm = *shm_run;

  Table t;
  t.column("approach", Align::kLeft).column("CktHt").column("MBytes")
      .column("vs shm traffic");
  const double shm_mb = static_cast<double>(shm.traffic[0].total_bytes()) / 1e6;
  auto ratio = [&](double mb) {
    return mb == 0.0 ? std::string("-") : format_fixed(shm_mb / mb, 1) + "x";
  };
  t.row().cell("shared memory (8B lines)")
      .cell(static_cast<long long>(shm.run.circuit_height))
      .cell(shm_mb, 3).cell("1.0x");
  t.row().cell("MP sender (rmt=2, loc=10)")
      .cell(static_cast<long long>(sender.circuit_height))
      .cell(sender.mbytes(), 3).cell(ratio(sender.mbytes()));
  t.row().cell("MP receiver (loc=1, rmt=30)")
      .cell(static_cast<long long>(receiver.circuit_height))
      .cell(receiver.mbytes(), 3).cell(ratio(receiver.mbytes()));
  return t;
}

Table run_table4_locality_mp(const Circuit& bnre, const Circuit& mdc,
                             const ExperimentConfig& config) {
  Table t;
  t.column("circuit", Align::kLeft).column("method", Align::kLeft)
      .column("CktHt").column("MBytes").column("Time(s)")
      .column("paper:Ht").column("paper:MB").column("paper:T");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  const auto runs = pool_map(paper::kTable4.size(), [&](std::size_t i) {
    const paper::LocalityMpRow& row = paper::kTable4[i];
    const Circuit& circuit = std::string(row.circuit) == "bnrE" ? bnre : mdc;
    return run_mp(circuit, config, schedule, method_from_name(row.method));
  });
  for (std::size_t i = 0; i < paper::kTable4.size(); ++i) {
    const paper::LocalityMpRow& row = paper::kTable4[i];
    if (method_from_name(row.method) == AssignMethod::kRoundRobin &&
        std::string(row.circuit) == "MDC") {
      t.separator();
    }
    const MpRunResult& r = *runs[i];
    t.row().cell(row.circuit).cell(row.method)
        .cell(static_cast<long long>(r.circuit_height))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3)
        .cell(row.ckt_height).cell(row.mbytes, 3).cell(row.seconds, 3);
  }
  return t;
}

Table run_table4_receiver_locality(const Circuit& circuit,
                                   const ExperimentConfig& config) {
  const UpdateSchedule schedule = UpdateSchedule::receiver(1, 5);
  const auto runs = pool_map(2, [&](std::size_t i) {
    return run_mp(circuit, config, schedule,
                  i == 0 ? AssignMethod::kRoundRobin
                         : AssignMethod::kThresholdInf);
  });
  const MpRunResult& rr = *runs[0];
  const MpRunResult& local = *runs[1];
  const double drop =
      rr.bytes_transferred == 0
          ? 0.0
          : 1.0 - static_cast<double>(local.bytes_transferred) /
                      static_cast<double>(rr.bytes_transferred);
  Table t;
  t.column("method", Align::kLeft).column("MBytes").column("traffic drop")
      .column("paper says");
  t.row().cell("round robin").cell(rr.mbytes(), 3).cell("-").cell("-");
  t.row().cell("fully local (inf)").cell(local.mbytes(), 3)
      .cell(format_fixed(drop * 100.0, 1) + "%")
      .cell("up to 63%");
  return t;
}

Table run_table5_locality_shm(const Circuit& bnre, const Circuit& mdc,
                              const ExperimentConfig& config) {
  Table t;
  t.column("circuit", Align::kLeft).column("method", Align::kLeft)
      .column("CktHt").column("MBytes").column("paper:Ht").column("paper:MB");
  const auto runs = pool_map(paper::kTable5.size(), [&](std::size_t i) {
    const paper::LocalityShmRow& row = paper::kTable5[i];
    const Circuit& circuit = std::string(row.circuit) == "bnrE" ? bnre : mdc;
    return run_shm_traffic(circuit, config, method_from_name(row.method), {8});
  });
  for (std::size_t i = 0; i < paper::kTable5.size(); ++i) {
    const paper::LocalityShmRow& row = paper::kTable5[i];
    if (method_from_name(row.method) == AssignMethod::kRoundRobin &&
        std::string(row.circuit) == "MDC") {
      t.separator();
    }
    const ShmTraffic& shm = *runs[i];
    t.row().cell(row.circuit).cell(row.method)
        .cell(static_cast<long long>(shm.run.circuit_height))
        .cell(static_cast<double>(shm.traffic[0].total_bytes()) / 1e6, 3)
        .cell(row.ckt_height).cell(row.mbytes, 3);
  }
  return t;
}

Table run_locality_measure(const Circuit& bnre, const Circuit& mdc,
                           const ExperimentConfig& config) {
  Table t;
  t.column("circuit", Align::kLeft).column("method", Align::kLeft)
      .column("measure").column("paper");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  struct LocCase {
    const Circuit* circuit;
    AssignMethod method;
  };
  std::vector<LocCase> cases;
  for (const Circuit* circuit : {&bnre, &mdc}) {
    for (AssignMethod method :
         {AssignMethod::kRoundRobin, AssignMethod::kThreshold30,
          AssignMethod::kThresholdInf}) {
      cases.push_back({circuit, method});
    }
  }
  // The measure needs the run's assignment/partition, so it is computed
  // inside each job and only the scalar crosses the join.
  const auto measures = pool_map(cases.size(), [&](std::size_t i) {
    const LocCase& lc = cases[i];
    const Partition partition(lc.circuit->channels(), lc.circuit->grids(),
                              MeshShape::for_procs(config.procs));
    const Assignment assignment =
        make_assignment(*lc.circuit, partition, lc.method);
    const MpRunResult r = run_message_passing(*lc.circuit, partition, assignment,
                                              config.mp(schedule));
    return locality_measure(r.routes, assignment, partition);
  });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const LocCase& lc = cases[i];
    std::string paper_value = "-";
    if (lc.method == AssignMethod::kThresholdInf) {
      paper_value =
          format_fixed(lc.circuit == &bnre ? paper::kLocalityMeasureBnre
                                           : paper::kLocalityMeasureMdc,
                       2);
    }
    t.row().cell(lc.circuit->name()).cell(assign_method_name(lc.method))
        .cell(*measures[i], 2).cell(paper_value);
    if (lc.circuit == &bnre && i + 1 < cases.size() &&
        cases[i + 1].circuit != &bnre) {
      t.separator();
    }
  }
  return t;
}

Table run_table6_scaling(const Circuit& circuit, const ExperimentConfig& config) {
  Table t;
  t.column("procs").column("CktHt").column("Occup.").column("MBytes")
      .column("Time(s)").column("paper:Ht").column("paper:MB").column("paper:T");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  const auto runs = pool_map(paper::kTable6.size(), [&](std::size_t i) {
    return run_mp(circuit, config, schedule, kBaselineAssign,
                  paper::kTable6[i].procs);
  });
  for (std::size_t i = 0; i < paper::kTable6.size(); ++i) {
    const paper::ScalingRow& row = paper::kTable6[i];
    const MpRunResult& r = *runs[i];
    t.row().cell(row.procs).cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3)
        .cell(row.ckt_height == 0 ? std::string("?")
                                  : std::to_string(row.ckt_height))
        .cell(row.mbytes, 3).cell(row.seconds, 3);
  }
  return t;
}

Table run_speedup(const Circuit& bnre, const Circuit& mdc,
                  const ExperimentConfig& config) {
  Table t;
  t.column("circuit", Align::kLeft).column("procs").column("Time(s)")
      .column("speedup").column("paper@16");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  struct SpeedCase {
    const Circuit* circuit;
    std::int32_t procs;
  };
  std::vector<SpeedCase> cases;
  for (const Circuit* circuit : {&bnre, &mdc}) {
    for (std::int32_t procs : {2, 4, 9, 16}) cases.push_back({circuit, procs});
  }
  const auto runs = pool_map(cases.size(), [&](std::size_t i) {
    return run_mp(*cases[i].circuit, config, schedule, kBaselineAssign,
                  cases[i].procs);
  });
  std::size_t idx = 0;
  for (const Circuit* circuit : {&bnre, &mdc}) {
    double t2 = 0.0;
    for (std::int32_t procs : {2, 4, 9, 16}) {
      const MpRunResult& r = *runs[idx++];
      if (procs == 2) t2 = r.seconds();
      // The paper computes speedup relative to the two-processor run, x2.
      const double speedup = r.seconds() == 0.0 ? 0.0 : 2.0 * t2 / r.seconds();
      std::string paper_value = "-";
      if (procs == 16) {
        paper_value = format_fixed(circuit == &bnre ? paper::kSpeedup16Bnre
                                                    : paper::kSpeedup16Mdc,
                                   1);
      }
      t.row().cell(circuit->name()).cell(procs).cell(r.seconds(), 3)
          .cell(speedup, 1).cell(paper_value);
    }
    if (circuit == &bnre) t.separator();
  }
  return t;
}

Table run_ablation_dynamic_assignment(const Circuit& circuit,
                                      const ExperimentConfig& config) {
  Table t;
  t.column("wire distribution", Align::kLeft).column("CktHt").column("Occup.")
      .column("MBytes").column("Time(s)").column("packets");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  const std::pair<const char*, WireAssignmentMode> cases[] = {
      {"static (ThresholdCost=1000)", WireAssignmentMode::kStatic},
      {"dynamic, polled between wires", WireAssignmentMode::kDynamicPolled},
      {"dynamic, reception interrupts", WireAssignmentMode::kDynamicInterrupt},
  };
  const auto runs = pool_map(std::size(cases), [&](std::size_t i) {
    ExperimentConfig c = config;
    c.mp_base.assignment_mode = cases[i].second;
    return run_mp(circuit, c, schedule);
  });
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const char* name = cases[i].first;
    const MpRunResult& r = *runs[i];
    t.row().cell(name).cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3)
        .cell(static_cast<unsigned long long>(r.network.packets));
  }
  return t;
}

Table run_hierarchical_shm(const Circuit& circuit, const ExperimentConfig& config) {
  Table t;
  t.column("assignment", Align::kLeft).column("remote refs")
      .column("NUMA mem(s)").column("bus busy(s)").column("bus util");
  const Partition partition(circuit.channels(), circuit.grids(),
                            MeshShape::for_procs(config.procs));
  constexpr AssignMethod kMethods[] = {
      AssignMethod::kRoundRobin, AssignMethod::kThreshold30,
      AssignMethod::kThreshold1000, AssignMethod::kThresholdInf};
  const auto runs = pool_map(std::size(kMethods), [&](std::size_t i) {
    return run_shm_traffic(circuit, config, kMethods[i], {8});
  });
  for (std::size_t i = 0; i < std::size(kMethods); ++i) {
    const AssignMethod method = kMethods[i];
    const ShmTraffic& shm = *runs[i];
    NumaEstimate numa = estimate_numa(shm.run.trace, partition);
    BusEstimate bus = estimate_bus(shm.traffic[0]);
    t.row().cell(assign_method_name(method))
        .cell(format_fixed(numa.remote_fraction() * 100.0, 1) + "%")
        .cell(static_cast<double>(numa.memory_ns) / 1e9, 3)
        .cell(static_cast<double>(bus.busy_ns()) / 1e9, 3)
        .cell(format_fixed(bus.utilization(shm.run.completion_ns) * 100.0, 1) +
              "%");
  }
  return t;
}

Table run_ablation_router(const Circuit& circuit) {
  Table t;
  t.column("router variant", Align::kLeft).column("CktHt").column("Occup.")
      .column("probes");
  RouterParams base;
  RouterParams mst = base;
  mst.decomposition = Decomposition::kMst;
  RouterParams quad = base;
  quad.explorer.congestion_power = 2;
  RouterParams thorough = base;
  thorough.explorer = ExplorerParams::thorough();
  RouterParams all = base;
  all.decomposition = Decomposition::kMst;
  all.explorer = ExplorerParams::thorough();
  all.explorer.congestion_power = 2;
  const std::pair<const char*, RouterParams> cases[] = {
      {"baseline (chain, linear, slack 1)", base},
      {"MST pin decomposition", mst},
      {"quadratic congestion pricing", quad},
      {"thorough exploration", thorough},
      {"all three combined", all},
  };
  const auto runs = pool_map(std::size(cases), [&](std::size_t i) {
    SequentialParams sp;
    sp.router = cases[i].second;
    return route_sequential(circuit, sp);
  });
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const SequentialResult& r = *runs[i];
    t.row().cell(cases[i].first)
        .cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(static_cast<long long>(r.work.probes));
  }
  return t;
}

Table run_iteration_convergence(const Circuit& circuit) {
  Table t;
  t.column("iterations").column("CktHt").column("Occup.").column("probes");
  constexpr std::int32_t kIterations[] = {1, 2, 3, 4, 6};
  const auto runs = pool_map(std::size(kIterations), [&](std::size_t i) {
    SequentialParams sp;
    sp.iterations = kIterations[i];
    return route_sequential(circuit, sp);
  });
  for (std::size_t i = 0; i < std::size(kIterations); ++i) {
    const std::int32_t iterations = kIterations[i];
    const SequentialResult& r = *runs[i];
    t.row().cell(iterations).cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(static_cast<long long>(r.work.probes));
  }
  return t;
}

Table run_ablation_lookahead(const Circuit& circuit,
                             const ExperimentConfig& config) {
  Table t;
  t.column("lookahead (wires)").column("CktHt").column("Occup.")
      .column("MBytes").column("Time(s)");
  constexpr std::int32_t kLookaheads[] = {1, 3, 5, 10, 20};
  const auto runs = pool_map(std::size(kLookaheads), [&](std::size_t i) {
    UpdateSchedule schedule = UpdateSchedule::receiver(1, 5);
    schedule.request_lookahead = kLookaheads[i];
    return run_mp(circuit, config, schedule);
  });
  for (std::size_t i = 0; i < std::size(kLookaheads); ++i) {
    const std::int32_t lookahead = kLookaheads[i];
    const MpRunResult& r = *runs[i];
    t.row().cell(lookahead).cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3);
  }
  return t;
}

Table run_threshold_sweep(const Circuit& circuit, const ExperimentConfig& config) {
  Table t;
  t.column("ThresholdCost", Align::kLeft).column("CktHt").column("MBytes")
      .column("Time(s)").column("cost imbalance");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  const Partition partition(circuit.channels(), circuit.grids(),
                            MeshShape::for_procs(config.procs));
  std::vector<std::pair<std::string, std::int64_t>> cases;
  for (std::int64_t threshold : {std::int64_t{1}, std::int64_t{10},
                                 std::int64_t{30}, std::int64_t{100},
                                 std::int64_t{300}, std::int64_t{1000},
                                 std::int64_t{3000}}) {
    cases.emplace_back(std::to_string(threshold), threshold);
  }
  cases.emplace_back("infinity", kThresholdInfinity);
  // The imbalance comes from the per-job assignment, so it crosses the
  // join alongside the run.
  struct SweepOut {
    MpRunResult run;
    double imbalance;
  };
  const auto runs = pool_map(cases.size(), [&](std::size_t i) {
    const Assignment assignment =
        assign_threshold_cost(circuit, partition, cases[i].second);
    MpRunResult r = run_message_passing(circuit, partition, assignment,
                                        config.mp(schedule));
    const double imbalance = assignment.cost_imbalance(circuit);
    return SweepOut{std::move(r), imbalance};
  });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const MpRunResult& r = runs[i]->run;
    t.row().cell(cases[i].first).cell(static_cast<long long>(r.circuit_height))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3)
        .cell(runs[i]->imbalance, 2);
  }
  return t;
}

Table run_view_staleness(const Circuit& circuit, const ExperimentConfig& config) {
  Table t;
  t.column("schedule", Align::kLeft).column("view MAE").column("own-region MAE")
      .column("CktHt").column("Occup.");
  const std::pair<const char*, UpdateSchedule> cases[] = {
      {"no updates", UpdateSchedule{}},
      {"sender (10,20)", UpdateSchedule::sender(10, 20)},
      {"sender (2,10)", UpdateSchedule::sender(2, 10)},
      {"sender (1,1)", UpdateSchedule::sender(1, 1)},
      {"receiver (1,30)", UpdateSchedule::receiver(1, 30)},
      {"receiver (1,5)", UpdateSchedule::receiver(1, 5)},
      {"mixed (5,2,1,5)", [] {
         UpdateSchedule s = UpdateSchedule::sender(2, 5);
         s.req_loc_requests = 1;
         s.req_rmt_touches = 5;
         return s;
       }()},
  };
  const auto runs = pool_map(std::size(cases), [&](std::size_t i) {
    return run_mp(circuit, config, cases[i].second);
  });
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const MpRunResult& r = *runs[i];
    t.row().cell(cases[i].first).cell(r.view_staleness, 3)
        .cell(r.own_region_staleness, 3)
        .cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor));
  }
  return t;
}

Table run_scaling_large(const Circuit& circuit, const ExperimentConfig& config) {
  Table t;
  t.column("procs").column("CktHt").column("Occup.").column("MBytes")
      .column("Time(s)").column("speedup");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  constexpr std::int32_t kProcs[] = {4, 16, 36, 64};
  const auto runs = pool_map(std::size(kProcs), [&](std::size_t i) {
    return run_mp(circuit, config, schedule, kBaselineAssign, kProcs[i]);
  });
  double t4 = 0.0;
  for (std::size_t i = 0; i < std::size(kProcs); ++i) {
    const std::int32_t procs = kProcs[i];
    const MpRunResult& r = *runs[i];
    if (procs == 4) t4 = r.seconds();
    const double speedup = r.seconds() == 0.0 ? 0.0 : 4.0 * t4 / r.seconds();
    t.row().cell(procs).cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3).cell(speedup, 1);
  }
  return t;
}

Table run_mp_iteration_sweep(const Circuit& circuit,
                             const ExperimentConfig& config) {
  Table t;
  t.column("iterations").column("CktHt").column("Occup.").column("MBytes")
      .column("Time(s)");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  constexpr std::int32_t kSweepIters[] = {1, 2, 3, 4};
  const auto runs = pool_map(std::size(kSweepIters), [&](std::size_t i) {
    ExperimentConfig c = config;
    c.iterations = kSweepIters[i];
    return run_mp(circuit, c, schedule);
  });
  for (std::size_t i = 0; i < std::size(kSweepIters); ++i) {
    const std::int32_t iterations = kSweepIters[i];
    const MpRunResult& r = *runs[i];
    t.row().cell(iterations).cell(static_cast<long long>(r.circuit_height))
        .cell(static_cast<long long>(r.occupancy_factor))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3);
  }
  return t;
}

Table run_ablation_cache_size(const Circuit& circuit,
                              const ExperimentConfig& config) {
  ShmTraffic shm = run_shm_traffic(circuit, config, kBaselineAssign, {});
  Table t;
  t.column("cache per proc", Align::kLeft).column("MBytes")
      .column("evict WB MB").column("evictions");
  // One reference trace, five independent replays: the replays share only
  // the const trace, so they fan out too.
  const std::pair<const char*, std::int32_t> cases[] = {
      {"1 KB", 128},           {"4 KB", 512},
      {"16 KB", 2048},         {"64 KB", 8192},
      {"infinite (paper)", 0},
  };
  const auto traffics = pool_map(std::size(cases), [&](std::size_t i) {
    CoherenceParams params;
    params.line_size = 8;
    params.capacity_lines = cases[i].second;
    CoherenceSim sim(config.procs, params);
    sim.replay(shm.run.trace);
    return sim.traffic();
  });
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const char* name = cases[i].first;
    const CoherenceTraffic& traffic = *traffics[i];
    t.row().cell(name)
        .cell(static_cast<double>(traffic.total_bytes()) / 1e6, 3)
        .cell(static_cast<double>(traffic.eviction_writeback_bytes) / 1e6, 3)
        .cell(static_cast<unsigned long long>(traffic.capacity_evictions));
  }
  return t;
}

Table run_seed_robustness(const ExperimentConfig& config) {
  Table t;
  t.column("seed", Align::kLeft).column("shm MB").column("sender MB")
      .column("receiver MB").column("hierarchy holds");
  constexpr std::uint64_t kSeeds[] = {0xB9E5EED5ULL, 0x1ULL, 0x2ULL, 0x3ULL,
                                      0x5EEDULL};
  // Each seed generates its own circuit and runs all three engines on it:
  // one self-contained job per seed.
  struct SeedOut {
    double shm_mb;
    double sender_mb;
    double receiver_mb;
  };
  const auto runs = pool_map(std::size(kSeeds), [&](std::size_t s) {
    GeneratorParams params;  // bnrE-shaped, reseeded
    params.name = "seeded";
    params.channels = 10;
    params.grids = 341;
    params.num_wires = 420;
    params.seed = kSeeds[s];
    params.clusters = 24;
    params.global_fraction = 0.12;
    params.local_span_mean = 18.0;
    Circuit circuit = generate_circuit(params);

    MpRunResult sender =
        run_mp(circuit, config, UpdateSchedule::sender(2, 10));
    MpRunResult receiver =
        run_mp(circuit, config, UpdateSchedule::receiver(1, 5));
    ExperimentConfig shm_cfg = config;
    shm_cfg.shm_base.trace_dedup_reads = true;  // classification-scale runs
    ShmConfig sc = shm_cfg.shm();
    const Partition partition(circuit.channels(), circuit.grids(),
                              MeshShape::for_procs(config.procs));
    sc.assignment = assign_threshold_cost(circuit, partition, 1000);
    ShmRunResult shm = run_shared_memory(circuit, sc);
    CoherenceParams cp;
    cp.line_size = 8;
    CoherenceSim sim(config.procs, cp);
    sim.replay(shm.trace);
    return SeedOut{static_cast<double>(sim.traffic().total_bytes()) / 1e6,
                   sender.mbytes(), receiver.mbytes()};
  });
  for (std::size_t s = 0; s < std::size(kSeeds); ++s) {
    const SeedOut& r = *runs[s];
    const bool holds = r.shm_mb > r.sender_mb && r.sender_mb > r.receiver_mb;
    char label[32];
    std::snprintf(label, sizeof label, "0x%llX",
                  static_cast<unsigned long long>(kSeeds[s]));
    t.row().cell(label).cell(r.shm_mb, 3).cell(r.sender_mb, 3)
        .cell(r.receiver_mb, 3).cell(holds ? "yes" : "NO");
  }
  return t;
}

const char* scale_assign_mode_name(ScaleAssignMode mode) {
  switch (mode) {
    case ScaleAssignMode::kGeographic: return "geo";
    case ScaleAssignMode::kDynamicFifo: return "dyn-fifo";
    case ScaleAssignMode::kDynamicLocality: return "dyn-local";
    case ScaleAssignMode::kDynamicSteal: return "dyn-steal";
  }
  return "?";
}

ScaleSweepResult run_scale_sweep(const ScaleSweepOptions& options) {
  LOCUS_ASSERT(!options.wire_counts.empty());
  LOCUS_ASSERT(!options.proc_counts.empty());
  LOCUS_ASSERT(!options.modes.empty());
  ScaleSweepResult out;
  Table& t = out.table;
  t.column("wires").column("procs").column("mode", Align::kLeft).column("CktHt")
      .column("routes/s").column("B/wire").column("speedup").column("view MB")
      .column("imbal").column("rtd min").column("rtd max").column("rtd sd");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);

  // Each circuit is generated once up front; the fanned jobs only read it.
  std::vector<Circuit> circuits;
  circuits.reserve(options.wire_counts.size());
  for (std::int32_t wires : options.wire_counts) {
    circuits.push_back(make_scale_circuit(wires, options.seed));
  }

  struct Job {
    std::size_t ckt = 0;
    std::int32_t wires = 0;
    std::int32_t procs = 0;
    ScaleAssignMode mode = ScaleAssignMode::kGeographic;
    bool skipped = false;
  };
  std::vector<Job> jobs;
  for (std::size_t c = 0; c < circuits.size(); ++c) {
    for (std::int32_t procs : options.proc_counts) {
      const MeshShape mesh = MeshShape::for_procs(procs);
      const bool skipped = mesh.rows > circuits[c].channels() ||
                           mesh.cols > circuits[c].grids();
      for (ScaleAssignMode mode : options.modes) {
        jobs.push_back({c, options.wire_counts[c], procs, mode, skipped});
      }
    }
  }

  struct RunOut {
    double seconds = 0.0;
    double bytes_per_wire = 0.0;
    ScaleModeMetrics m;
  };
  // Fanned over the process SimPool; every job is an independent
  // deterministic simulation, so the sweep is pool-width independent.
  const auto runs = pool_map(jobs.size(), [&](std::size_t i) {
    RunOut o;
    const Job& job = jobs[i];
    if (job.skipped) return o;
    const Circuit& circuit = circuits[job.ckt];
    const MeshShape mesh = MeshShape::for_procs(job.procs);
    const Partition partition(circuit.channels(), circuit.grids(), mesh);
    // ThresholdCost-infinity (fully geographic) rather than the paper's
    // tc1000 baseline: tc1000 round-robins every chip-spanning wire, so
    // each node commits routes across the whole grid and the tiled views
    // converge back to dense. Locality-preserving assignment is exactly
    // what §5.4 prescribes for larger machines, and it is what keeps
    // per-view resident memory bounded by the node's neighborhood. The
    // dynamic modes recover its lost load balance without densifying: the
    // queue owner scores candidates against each requester's resident
    // tiles (DESIGN.md §11).
    const Assignment assignment =
        make_assignment(circuit, partition, AssignMethod::kThresholdInf);
    MpConfig config;
    config.schedule = schedule;
    config.iterations = options.iterations;
    config.shard.enabled = options.sharded;
    config.shard.batch_updates = options.batch_updates;
    config.shard.tile = options.tile;
    config.link_cost.kind = options.cost_model;
    switch (job.mode) {
      case ScaleAssignMode::kGeographic:
        break;
      case ScaleAssignMode::kDynamicFifo:
        config.assignment_mode = WireAssignmentMode::kDynamicInterrupt;
        break;
      case ScaleAssignMode::kDynamicSteal:
        config.dynamic.neighbor_steal = true;
        [[fallthrough]];
      case ScaleAssignMode::kDynamicLocality:
        config.assignment_mode = WireAssignmentMode::kDynamicInterrupt;
        config.dynamic.policy = GrantPolicy::kLocality;
        config.dynamic.grant_batch = options.grant_batch;
        config.dynamic.locality_radius = options.locality_radius;
        break;
    }
    const MpRunResult r =
        run_message_passing(circuit, partition, assignment, config);
    o.seconds = r.seconds();
    o.bytes_per_wire = static_cast<double>(r.bytes_transferred) /
                       static_cast<double>(circuit.num_wires());
    ScaleModeMetrics& m = o.m;
    m.mode = job.mode;
    const double routed_total = static_cast<double>(circuit.num_wires()) *
                                static_cast<double>(options.iterations);
    m.route_rps = o.seconds == 0.0 ? 0.0 : routed_total / o.seconds;
    m.traffic_bytes = r.bytes_transferred;
    m.resident_bytes = r.view_resident_bytes;
    m.circuit_height = r.circuit_height;
    m.routed_min = r.routed_per_proc.empty() ? 0 : r.routed_per_proc.front();
    double sum = 0.0;
    for (std::int64_t v : r.routed_per_proc) {
      m.routed_min = std::min(m.routed_min, v);
      m.routed_max = std::max(m.routed_max, v);
      sum += static_cast<double>(v);
    }
    const double n = static_cast<double>(r.routed_per_proc.size());
    const double mean = n == 0.0 ? 0.0 : sum / n;
    double var = 0.0;
    for (std::int64_t v : r.routed_per_proc) {
      const double d = static_cast<double>(v) - mean;
      var += d * d;
    }
    m.routed_stddev = n == 0.0 ? 0.0 : std::sqrt(var / n);
    // For the static mode the achieved balance equals the assignment's
    // prediction, so report Assignment::cost_imbalance; the dynamic modes
    // report the max/mean ratio of the per-processor routed counts.
    m.imbalance = job.mode == ScaleAssignMode::kGeographic
                      ? assignment.cost_imbalance(circuit)
                      : (mean == 0.0 ? 0.0 :
                         static_cast<double>(m.routed_max) / mean);
    return o;
  });

  // Serial table build in submission order keeps the output byte-identical
  // at any pool width.
  std::size_t prev_ckt = 0;
  std::vector<double> base_seconds(options.modes.size(), 0.0);
  std::vector<ScaleModeMetrics> combo;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const std::size_t mode_idx = i % options.modes.size();
    if (job.ckt != prev_ckt) {
      t.separator();
      prev_ckt = job.ckt;
      std::fill(base_seconds.begin(), base_seconds.end(), 0.0);
    }
    if (job.skipped) {
      t.row().cell(job.wires).cell(job.procs)
          .cell(scale_assign_mode_name(job.mode)).cell("-").cell("-")
          .cell("-").cell("-").cell("(mesh exceeds channels)").cell("-")
          .cell("-").cell("-").cell("-");
      continue;
    }
    const RunOut& r = *runs[i];
    if (base_seconds[mode_idx] == 0.0) base_seconds[mode_idx] = r.seconds;
    const double speedup =
        r.seconds == 0.0 ? 0.0 : base_seconds[mode_idx] / r.seconds;
    t.row().cell(job.wires).cell(job.procs)
        .cell(scale_assign_mode_name(job.mode))
        .cell(static_cast<long long>(r.m.circuit_height))
        .cell(r.m.route_rps, 0).cell(r.bytes_per_wire, 1).cell(speedup, 2)
        .cell(static_cast<double>(r.m.resident_bytes) / 1e6, 2)
        .cell(r.m.imbalance, 2)
        .cell(static_cast<long long>(r.m.routed_min))
        .cell(static_cast<long long>(r.m.routed_max))
        .cell(r.m.routed_stddev, 1);
    if (mode_idx == 0) {
      out.headline_route_rps = r.m.route_rps;
      out.headline_traffic_bytes = r.m.traffic_bytes;
      out.headline_resident_bytes = r.m.resident_bytes;
      out.headline_circuit_height = r.m.circuit_height;
      combo.clear();
    }
    combo.push_back(r.m);
    out.headline_modes = combo;
  }
  return out;
}

Table run_overhead_breakdown(const Circuit& circuit,
                             const ExperimentConfig& config) {
  Table t;
  t.column("schedule", Align::kLeft).column("routing(s)").column("msg sw(s)")
      .column("NI copy(s)").column("msg fraction");
  const std::pair<const char*, UpdateSchedule> cases[] = {
      {"sender (1,1)  [most frequent]", UpdateSchedule::sender(1, 1)},
      {"sender (2,5)", UpdateSchedule::sender(2, 5)},
      {"sender (2,10)", UpdateSchedule::sender(2, 10)},
      {"sender (10,20) [rarest]", UpdateSchedule::sender(10, 20)},
      {"receiver (1,5)", UpdateSchedule::receiver(1, 5)},
      {"receiver (1,30)", UpdateSchedule::receiver(1, 30)},
  };
  const auto runs = pool_map(std::size(cases), [&](std::size_t i) {
    return run_mp(circuit, config, cases[i].second);
  });
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const TimeBreakdown& tb = runs[i]->time_breakdown;
    t.row().cell(cases[i].first)
        .cell(static_cast<double>(tb.routing_ns) / 1e9, 3)
        .cell(static_cast<double>(tb.msg_software_ns) / 1e9, 3)
        .cell(static_cast<double>(tb.network_copy_ns) / 1e9, 3)
        .cell(format_fixed(tb.message_fraction() * 100.0, 1) + "%");
  }
  return t;
}

Table run_ablation_packet_structure(const Circuit& circuit,
                                    const ExperimentConfig& config) {
  Table t;
  t.column("packet structure", Align::kLeft).column("CktHt").column("MBytes")
      .column("Time(s)");
  const UpdateSchedule schedule = UpdateSchedule::sender(2, 10);
  const std::pair<const char*, PacketStructure> cases[] = {
      {"wire based", PacketStructure::kWireBased},
      {"whole region", PacketStructure::kWholeRegion},
      {"bounding box (paper)", PacketStructure::kBoundingBox},
  };
  const auto runs = pool_map(std::size(cases), [&](std::size_t i) {
    ExperimentConfig c = config;
    c.mp_base.packet_structure = cases[i].second;
    return run_mp(circuit, c, schedule);
  });
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const char* name = cases[i].first;
    const MpRunResult& r = *runs[i];
    t.row().cell(name).cell(static_cast<long long>(r.circuit_height))
        .cell(r.mbytes(), 3).cell(r.seconds(), 3);
  }
  return t;
}

Table run_ablation_protocols(const Circuit& circuit,
                             const ExperimentConfig& config) {
  ShmConfig shm_config = config.shm();
  const Partition partition(circuit.channels(), circuit.grids(),
                            MeshShape::for_procs(config.procs));
  shm_config.assignment = make_assignment(circuit, partition, kBaselineAssign);
  ShmRunResult run = run_shared_memory(circuit, shm_config);

  Table t;
  t.column("protocol", Align::kLeft).column("MBytes").column("write frac")
      .column("invalidations");
  // Sweep 8B and 32B lines: invalidate protocols scale with line size,
  // the update protocol does not (no refetches). Eight independent replays
  // of the same const trace — one pool job each.
  struct ProtoCase {
    const char* name;
    ProtocolKind protocol;
    std::int32_t line;
  };
  std::vector<ProtoCase> cases;
  for (auto [name, protocol] :
       {std::pair<const char*, ProtocolKind>{"write back w/ invalidate (paper)",
                                             ProtocolKind::kWriteBackInvalidate},
        {"write through", ProtocolKind::kWriteThrough},
        {"Illinois MESI", ProtocolKind::kMesi},
        {"Dragon (write update)", ProtocolKind::kDragon}}) {
    for (std::int32_t line : {8, 32}) cases.push_back({name, protocol, line});
  }
  const auto traffics = pool_map(cases.size(), [&](std::size_t i) {
    CoherenceParams params;
    params.line_size = cases[i].line;
    params.protocol = cases[i].protocol;
    CoherenceSim sim(config.procs, params);
    sim.replay(run.trace);
    return sim.traffic();
  });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CoherenceTraffic& traffic = *traffics[i];
    t.row().cell(std::string(cases[i].name) + " @" +
                 std::to_string(cases[i].line) + "B")
        .cell(static_cast<double>(traffic.total_bytes()) / 1e6, 3)
        .cell(traffic.write_fraction(), 2)
        .cell(static_cast<unsigned long long>(traffic.invalidation_msgs));
  }
  return t;
}

Table run_ablation_topology(const Circuit& circuit, const ExperimentConfig& config) {
  Table t;
  t.column("topology", Align::kLeft).column("CktHt").column("MBytes")
      .column("byte-hops").column("Time(s)").column("mean latency (us)");
  // Receiver-initiated traffic reaches across the whole mesh (requests to
  // arbitrary owners), so wraparound edges actually shorten paths. CBS
  // simulated k-ary n-cubes generally; the binary 4-cube (hypercube) and
  // the 1D ring bound the mesh from both sides.
  const UpdateSchedule schedule = UpdateSchedule::receiver(1, 5);
  struct TopoCase {
    const char* name;
    Topology::Edges edges;
    std::vector<std::int32_t> dims;  // empty: match the partition mesh
  };
  // The binary n-cube only exists for power-of-two processor counts.
  std::vector<std::int32_t> cube_dims;
  for (std::int32_t p = config.procs; p > 1 && p % 2 == 0; p /= 2) {
    cube_dims.push_back(2);
  }
  const bool cube_ok =
      !cube_dims.empty() &&
      (1 << cube_dims.size()) == config.procs;
  std::vector<TopoCase> cases = {
      TopoCase{"2D mesh (paper)", Topology::Edges::kMesh, {}},
      TopoCase{"2D torus", Topology::Edges::kTorus, {}},
      TopoCase{"1D ring", Topology::Edges::kTorus, {config.procs}}};
  if (cube_ok) {
    cases.insert(cases.begin() + 2,
                 TopoCase{"binary hypercube", Topology::Edges::kTorus, cube_dims});
  }
  const auto runs = pool_map(cases.size(), [&](std::size_t i) {
    ExperimentConfig c = config;
    c.mp_base.edges = cases[i].edges;
    c.mp_base.topology_dims = cases[i].dims;
    return run_mp(circuit, c, schedule);
  });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const char* name = cases[i].name;
    const MpRunResult& r = *runs[i];
    const double mean_latency_us =
        r.network.packets == 0
            ? 0.0
            : static_cast<double>(r.network.total_latency_ns) /
                  static_cast<double>(r.network.packets) / 1e3;
    t.row().cell(name).cell(static_cast<long long>(r.circuit_height))
        .cell(r.mbytes(), 3)
        .cell(static_cast<unsigned long long>(r.network.byte_hops))
        .cell(r.seconds(), 3).cell(mean_latency_us, 1);
  }
  return t;
}

Table run_obs_traffic_summary(const Circuit& circuit,
                              const ExperimentConfig& config) {
  Table t;
  t.column("metric", Align::kLeft).column("obs counter").column("engine stat")
      .column("match", Align::kLeft);
  auto row = [&t](const char* name, std::uint64_t o, std::uint64_t e) {
    t.row().cell(name).cell(static_cast<unsigned long long>(o))
        .cell(static_cast<unsigned long long>(e))
        .cell(o == e ? "yes" : "NO");
  };

  // Two pool jobs, each with its own obs::Obs (per-job registries — no
  // shard is ever shared across jobs); the cross-check rows read the
  // registries after the join.
  obs::Obs mp_obs;
  std::optional<MpRunResult> mp_run;
  obs::Obs shm_obs_sink;
  std::optional<ShmRunResult> shm_run;
  std::optional<CoherenceTraffic> coh_traffic;
  SimPool().run_all({
      // MP receiver-initiated run with the obs layer attached: every
      // counter must agree with the statistic the engine already keeps.
      {"obs:mp", [&] {
         const Partition partition(circuit.channels(), circuit.grids(),
                                   MeshShape::for_procs(config.procs));
         const Assignment assignment =
             make_assignment(circuit, partition, kBaselineAssign);
         MpConfig mp_config = config.mp(UpdateSchedule::receiver(1, 30));
         mp_config.obs = &mp_obs;
         mp_run.emplace(
             run_message_passing(circuit, partition, assignment, mp_config));
       }},
      // Deterministic shm run plus a coherence replay of its reference
      // trace.
      {"obs:shm", [&] {
         ShmConfig shm_config = config.shm();
         shm_config.obs = &shm_obs_sink;
         shm_run.emplace(run_shared_memory(circuit, shm_config));
         CoherenceSim sim(config.procs, CoherenceParams{});
         sim.replay(shm_run->trace);
         sim.publish_obs(shm_obs_sink);
         coh_traffic.emplace(sim.traffic());
       }},
  });

  {
    const MpRunResult& r = *mp_run;
    auto& reg = mp_obs.counters();
    row("net.packets", reg.total("net.packets"), r.network.packets);
    row("net.bytes", reg.total("net.bytes"), r.network.bytes);
    row("net.byte_hops", reg.total("net.byte_hops"), r.network.byte_hops);
    row("mp.wires_routed", reg.total("mp.wires_routed"),
        static_cast<std::uint64_t>(r.work.wires_routed));
    row("mp.updates_suppressed", reg.total("mp.updates_suppressed"),
        static_cast<std::uint64_t>(r.updates_suppressed));
  }

  t.separator();

  {
    const ShmRunResult& r = *shm_run;
    auto& reg = shm_obs_sink.counters();
    row("shm.wires_routed", reg.total("shm.wires_routed"),
        static_cast<std::uint64_t>(r.work.wires_routed));
    row("shm.trace_refs", reg.total("shm.trace_refs"), r.trace.size());
    row("coh.accesses", reg.total(obs::CoherenceObsNames::kAccesses),
        coh_traffic->accesses);
    row("coh.total_bytes", reg.total(obs::CoherenceObsNames::kTotalBytes),
        coh_traffic->total_bytes());
  }
  return t;
}

Table run_check_oracle(const Circuit& circuit, const ExperimentConfig& config,
                       const FaultPlan* faults) {
  OracleConfig oracle;
  oracle.procs = config.procs;
  oracle.iterations = config.iterations;
  oracle.router = config.mp_base.router;
  oracle.time = config.mp_base.time;
  oracle.faults = faults;
  const OracleResult result = run_differential_oracle(circuit, oracle);

  Table t;
  t.column("implementation", Align::kLeft).column("CktHt").column("Occup.")
      .column("legal", Align::kLeft).column("bands", Align::kLeft)
      .column("checkpoints").column("consistent", Align::kLeft)
      .column("converged", Align::kLeft).column("verdict", Align::kLeft);
  for (const OracleVariant& v : result.variants) {
    t.row().cell(v.name)
        .cell(static_cast<long long>(v.circuit_height))
        .cell(static_cast<long long>(v.occupancy_factor))
        .cell(v.legality.legal() ? "yes" : "NO")
        .cell(v.height_in_band && v.occupancy_in_band ? "in" : "OUT")
        .cell(static_cast<long long>(v.consistency.checkpoints))
        .cell(v.is_message_passing ? (v.consistency.consistent() ? "yes" : "NO")
                                   : "-")
        .cell(v.is_message_passing ? (v.consistency.converged() ? "yes" : "NO")
                                   : "-")
        .cell(v.ok() ? "OK" : "FAIL");
  }
  return t;
}

Table run_check_faults(const Circuit& circuit, const ExperimentConfig& config) {
  Table t;
  t.column("fault plan", Align::kLeft).column("injected").column("violations")
      .column("unmatched").column("inflight").column("lost pkts")
      .column("converged", Align::kLeft).column("detected", Align::kLeft);

  struct Case {
    const char* name;
    FaultPlan plan;
    bool expect_divergence;
  };
  std::vector<Case> cases;
  cases.push_back({"none", FaultPlan{}, false});
  {
    // Drops target the owner-bound delta updates: those are what the
    // conservation ledger tracks (losing a response would instead park a
    // blocking receiver — a deadlock, not a consistency divergence).
    FaultPlan p;
    p.drop_rate = 0.05;
    p.packet_types = {kMsgSendRmtData};
    cases.push_back({"drop 0.05 (deltas)", p, true});
  }
  {
    FaultPlan p;
    p.dup_rate = 0.10;
    p.packet_types = {kMsgSendRmtData};
    cases.push_back({"dup 0.10 (deltas)", p, true});
  }
  {
    FaultPlan p;
    p.delay_rate = 0.3;
    p.delay_ns = 500'000;
    cases.push_back({"delay 500us@0.3", p, false});
  }
  {
    FaultPlan p;
    p.reorder_rate = 0.2;
    cases.push_back({"reorder 0.2", p, false});
  }
  {
    FaultPlan p;
    p.stall_rate = 0.05;
    p.stall_ns = 200'000;
    cases.push_back({"stall 200us@0.05", p, false});
  }

  // Each fault plan is an independent run with a job-local checker.
  struct FaultOut {
    MpRunResult run;
    ConsistencyReport rep;
  };
  const auto runs = pool_map(cases.size(), [&](std::size_t i) {
    ConsistencyOptions opts;
    opts.checkpoint_period = 8;
    ViewConsistencyChecker checker(opts);
    // Frequent updates (periods 2/2) so even small circuits put enough
    // packets on the wire for the configured rates to fire.
    MpConfig mp = config.mp(UpdateSchedule::sender(2, 2));
    mp.faults = &cases[i].plan;
    mp.observer = &checker;
    MpRunResult r = run_message_passing(circuit, config.procs, mp);
    ConsistencyReport rep = checker.report();
    return FaultOut{std::move(r), std::move(rep)};
  });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    const MpRunResult& run = runs[i]->run;
    const ConsistencyReport& rep = runs[i]->rep;
    const std::uint64_t injected = run.faults.dropped + run.faults.duplicated +
                                   run.faults.delayed + run.faults.reordered +
                                   run.faults.stalls;
    const bool diverged = !rep.consistent() || !rep.converged();
    // Divergence is only owed when a divergence-class fault actually fired.
    const bool expect = c.expect_divergence &&
                        run.faults.dropped + run.faults.duplicated > 0;
    const bool detected_correctly = diverged == expect;
    t.row().cell(c.name)
        .cell(static_cast<unsigned long long>(injected))
        .cell(static_cast<long long>(rep.violations))
        .cell(static_cast<long long>(rep.unmatched_applies))
        .cell(static_cast<long long>(rep.final_inflight_cells))
        .cell(static_cast<long long>(rep.final_outstanding_packets))
        .cell(rep.converged() ? "yes" : "NO")
        .cell(!detected_correctly ? "WRONG" : diverged ? "divergence" : "clean");
  }
  return t;
}

Table run_check_trace_scan(const Circuit& circuit, const ExperimentConfig& config) {
  ShmConfig shm = config.shm();
  shm.capture_trace = true;
  const ShmRunResult run = run_shared_memory(circuit, shm);

  Table t;
  t.column("line B").column("refs").column("lines").column("conflicted")
      .column("ww").column("wr").column("rw")
      .column("hottest", Align::kLeft).column("histogram", Align::kLeft);
  constexpr std::int32_t kLines[] = {4, 8, 16, 32};
  const auto reports = pool_map(std::size(kLines), [&](std::size_t i) {
    TraceScanOptions opts;
    opts.line_bytes = kLines[i];
    return scan_trace_conflicts(run.trace, opts);
  });
  for (std::size_t i = 0; i < std::size(kLines); ++i) {
    const std::int32_t line = kLines[i];
    const TraceScanReport& rep = *reports[i];
    std::string hottest = "-";
    if (!rep.hottest.empty()) {
      hottest = "line " + std::to_string(rep.hottest.front().line) + " x" +
                std::to_string(rep.hottest.front().total());
    }
    std::string histogram;
    for (std::size_t b = 0; b < rep.histogram.size(); ++b) {
      if (b > 0) histogram += "/";
      histogram += std::to_string(rep.histogram[b]);
    }
    t.row().cell(static_cast<long long>(line))
        .cell(static_cast<long long>(rep.refs))
        .cell(static_cast<long long>(rep.lines_touched))
        .cell(static_cast<long long>(rep.lines_with_conflicts))
        .cell(static_cast<long long>(rep.ww))
        .cell(static_cast<long long>(rep.wr))
        .cell(static_cast<long long>(rep.rw))
        .cell(hottest)
        .cell(histogram.empty() ? "-" : histogram);
  }
  return t;
}

namespace {

bool routes_equal(const std::vector<WireRoute>& a,
                  const std::vector<WireRoute>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].wire != b[i].wire || a[i].path_cost != b[i].path_cost ||
        a[i].cells != b[i].cells || a[i].connections != b[i].connections) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool routes_identical(const std::vector<WireRoute>& a,
                      const std::vector<WireRoute>& b) {
  return routes_equal(a, b);
}

TopologySweepResult run_topology_sweep(const Circuit& circuit,
                                       const TopologySweepOptions& options) {
  LOCUS_ASSERT(!options.proc_counts.empty());
  struct Sched {
    const char* name;
    UpdateSchedule schedule;
  };
  UpdateSchedule mixed;
  mixed.send_loc_period = 10;
  mixed.send_rmt_period = 5;
  mixed.req_rmt_touches = 3;
  mixed.req_loc_requests = 2;
  const Sched scheds[] = {
      {"sender(10,5)", UpdateSchedule::sender(10, 5)},
      {"receiver(5,2)", UpdateSchedule::receiver(5, 2)},
      {"receiver-blk(5,2)", UpdateSchedule::receiver(5, 2, /*blocking=*/true)},
      {"mixed", mixed},
  };
  struct Topo {
    const char* name;
    Topology::Edges edges;
  };
  const Topo topos[] = {
      {"mesh", Topology::Edges::kMesh},
      {"torus", Topology::Edges::kTorus},
      {"fat-tree", Topology::Edges::kFatTree},
  };
  const LinkCostModelKind models[] = {
      LinkCostModelKind::kFixed,
      LinkCostModelKind::kMd1,
      LinkCostModelKind::kVc,
  };

  struct Job {
    std::size_t sched = 0;
    std::size_t topo = 0;
    std::size_t model = 0;
    std::int32_t procs = 0;
  };
  std::vector<Job> jobs;
  for (std::int32_t procs : options.proc_counts) {
    for (std::size_t topo = 0; topo < std::size(topos); ++topo) {
      for (std::size_t model = 0; model < std::size(models); ++model) {
        for (std::size_t sched = 0; sched < std::size(scheds); ++sched) {
          jobs.push_back({sched, topo, model, procs});
        }
      }
    }
  }

  struct RunOut {
    std::int64_t height = 0;
    SimTime completion_ns = 0;
    std::uint64_t bytes = 0;
    std::uint64_t byte_hops = 0;
    LinkUsageSummary usage;
    bool consistent = false;
    bool converged = false;
    bool ledger_ok = false;
    bool conserved = false;  ///< sum(link_bytes) == byte_hops
    bool ok() const { return consistent && converged && ledger_ok && conserved; }
  };
  // Each cell of the matrix is an independent deterministic simulation with
  // its own consistency checker; pool_map keeps the table bytes identical at
  // any pool width.
  const auto runs = pool_map(jobs.size(), [&](std::size_t i) {
    const Job& job = jobs[i];
    ConsistencyOptions check_options;
    check_options.checkpoint_period = options.checkpoint_period;
    ViewConsistencyChecker checker(check_options);

    MpConfig mp;
    mp.schedule = scheds[job.sched].schedule;
    mp.iterations = options.iterations;
    mp.edges = topos[job.topo].edges;
    mp.fat_tree_arity = options.fat_tree_arity;
    mp.link_cost.kind = models[job.model];
    mp.transport.enabled = options.transport;
    mp.observer = &checker;
    const MpRunResult r = run_message_passing(circuit, job.procs, mp);

    RunOut o;
    o.height = r.circuit_height;
    o.completion_ns = r.completion_ns;
    o.bytes = r.network.bytes;
    o.byte_hops = r.network.byte_hops;
    o.usage = r.link_usage;
    const ConsistencyReport report = checker.report();
    o.consistent = report.consistent();
    o.converged = report.converged();
    o.ledger_ok = !options.transport || r.transport.books_balance();
    std::uint64_t link_bytes_total = 0;
    for (std::uint64_t b : r.link_bytes) link_bytes_total += b;
    o.conserved = link_bytes_total == r.network.byte_hops;
    return o;
  });

  TopologySweepResult out;
  Table& t = out.table;
  t.column("schedule", Align::kLeft).column("topology", Align::kLeft)
      .column("model", Align::kLeft).column("procs").column("CktHt")
      .column("Time(ms)").column("KB").column("max util").column("mean util")
      .column("links").column("stalls").column("checks", Align::kLeft);
  out.all_ok = true;
  std::int32_t prev_procs = jobs.empty() ? 0 : jobs.front().procs;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const RunOut& r = *runs[i];
    if (job.procs != prev_procs) {
      t.separator();
      prev_procs = job.procs;
    }
    t.row().cell(scheds[job.sched].name).cell(topos[job.topo].name)
        .cell(link_cost_model_name(models[job.model])).cell(job.procs)
        .cell(static_cast<long long>(r.height))
        .cell(static_cast<double>(r.completion_ns) / 1e6, 2)
        .cell(static_cast<double>(r.bytes) / 1e3, 1)
        .cell(r.usage.max_utilization, 3).cell(r.usage.mean_utilization, 3)
        .cell(static_cast<long long>(r.usage.links_used))
        .cell(static_cast<unsigned long long>(r.usage.stalls))
        .cell(r.ok() ? "ok"
                     : (!r.conserved ? "BYTES-LEAKED"
                                     : (!r.ledger_ok ? "IMBALANCED"
                                                     : "INCONSISTENT")));
    out.all_ok = out.all_ok && r.ok();
    out.total_stalls += r.usage.stalls;
    ++out.runs;
  }
  return out;
}

Table run_fault_recovery_sweep(const Circuit& circuit,
                               const ExperimentConfig& config) {
  struct Sched {
    const char* name;
    UpdateSchedule schedule;
  };
  UpdateSchedule mixed;
  mixed.send_loc_period = 10;
  mixed.send_rmt_period = 5;
  mixed.req_rmt_touches = 3;
  mixed.req_loc_requests = 2;
  const Sched scheds[] = {
      {"sender(10,5)", UpdateSchedule::sender(10, 5)},
      {"receiver(5,2)", UpdateSchedule::receiver(5, 2)},
      {"receiver-blk(5,2)", UpdateSchedule::receiver(5, 2, /*blocking=*/true)},
      {"mixed", mixed},
  };
  constexpr double kRates[] = {0.0, 0.005, 0.02, 0.05};
  constexpr std::size_t kNumScheds = std::size(scheds);
  constexpr std::size_t kNumRates = std::size(kRates);

  // Plans live in a stable vector: MpConfig keeps a pointer into it across
  // the pooled runs. Drops hit every packet type — including blocking-mode
  // responses, which without the transport would deadlock the requester.
  std::vector<FaultPlan> plans(kNumScheds * kNumRates);
  for (std::size_t s = 0; s < kNumScheds; ++s) {
    for (std::size_t r = 0; r < kNumRates; ++r) {
      plans[s * kNumRates + r].drop_rate = kRates[r];
    }
  }
  const auto runs = pool_map(kNumScheds * kNumRates, [&](std::size_t i) {
    MpConfig mp = config.mp(scheds[i / kNumRates].schedule);
    mp.transport.enabled = true;
    mp.faults = &plans[i];
    return run_message_passing(circuit, config.procs, mp);
  });

  Table t;
  t.column("schedule", Align::kLeft).column("drop").column("dropped")
      .column("retx").column("dedup").column("acks").column("MBytes")
      .column("ovh%").column("lag(us)").column("identical", Align::kLeft)
      .column("ledger", Align::kLeft);
  for (std::size_t s = 0; s < kNumScheds; ++s) {
    if (s > 0) t.separator();
    const MpRunResult& base = *runs[s * kNumRates];
    for (std::size_t r = 0; r < kNumRates; ++r) {
      const MpRunResult& run = *runs[s * kNumRates + r];
      // The convergence guarantee: a faulted run is bit-identical to the
      // same schedule's fault-free run in everything the router produced.
      const bool identical = routes_equal(run.routes, base.routes) &&
                             run.completion_ns == base.completion_ns &&
                             run.view_staleness == base.view_staleness &&
                             run.circuit_height == base.circuit_height;
      const std::uint64_t control_bytes =
          run.transport.retransmit_bytes + run.transport.ack_bytes;
      const double data_bytes =
          static_cast<double>(run.bytes_transferred - control_bytes);
      t.row().cell(scheds[s].name).cell(kRates[r], 3)
          .cell(static_cast<unsigned long long>(run.faults.dropped))
          .cell(static_cast<unsigned long long>(run.transport.retransmits))
          .cell(static_cast<unsigned long long>(run.transport.dup_dropped))
          .cell(static_cast<unsigned long long>(run.transport.acks_sent))
          .cell(run.mbytes(), 3)
          .cell(data_bytes > 0.0
                    ? 100.0 * static_cast<double>(control_bytes) / data_bytes
                    : 0.0,
                2)
          .cell(static_cast<double>(run.transport.max_recovery_lag_ns) / 1e3, 1)
          .cell(identical ? "yes" : "NO")
          .cell(run.transport.books_balance() ? "ok" : "IMBALANCED");
    }
  }
  return t;
}

}  // namespace locus
