#include "harness/sim_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "shm/numa.hpp"
#include "support/assert.hpp"

namespace locus {

namespace {

int g_default_threads = 0;  // 0: resolve from the environment
int g_pinning = -1;         // -1: resolve from the environment

int resolve_env_threads() {
  const char* env = std::getenv("LOCUS_THREADS");
  if (env == nullptr) return 1;
  const int n = std::atoi(env);
  return n > 0 ? n : 1;
}

bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

thread_local int t_worker_index = 0;

}  // namespace

void set_sim_threads(int n) { g_default_threads = n > 0 ? n : 0; }

int sim_threads() {
  return g_default_threads > 0 ? g_default_threads : resolve_env_threads();
}

void set_pool_pinning(bool on) { g_pinning = on ? 1 : 0; }

bool pool_pinning() {
  if (g_pinning >= 0) return g_pinning != 0;
  return env_flag("LOCUS_POOL_PIN");
}

int pool_worker_index() { return t_worker_index; }

SimPool::SimPool(int threads)
    : threads_(threads > 0 ? threads : sim_threads()) {
  LOCUS_ASSERT(threads_ >= 1);
}

int SimPool::effective_workers(std::size_t jobs) const {
  std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), jobs);
  if (!env_flag("LOCUS_POOL_IGNORE_AFFINITY")) {
    // Spawning more workers than the affinity mask offers cpus buys no
    // parallelism and pays spawn + context-switch + steal overhead; on a
    // 1-cpu host this turns every pooled run back into the inline path.
    workers = std::min<std::size_t>(
        workers, static_cast<std::size_t>(numa::available_cpus()));
  }
  return static_cast<int>(std::max<std::size_t>(workers, 1));
}

namespace {

/// Shared state of one run_all call. Each worker owns deque[worker]; all
/// deques are guarded by one mutex apiece so steals are safe. `remaining`
/// is the run's termination condition: workers spin between their own
/// deque and steal attempts until every job has been *completed* (not
/// merely claimed), which also keeps a worker alive to steal the tail of a
/// long job list.
struct RunState {
  /// Cache-line aligned so one worker's queue mutations (and the mutex
  /// word a thief spins on) never invalidate a neighbour worker's line.
  struct alignas(64) WorkerQueue {
    std::mutex mutex;
    std::deque<std::size_t> jobs;
  };

  explicit RunState(std::size_t workers) : queues(workers) {}

  std::vector<WorkerQueue> queues;
  alignas(64) std::atomic<std::size_t> remaining{0};

  std::mutex error_mutex;
  std::exception_ptr error;        ///< first failure by job index
  std::size_t error_index = 0;

  bool pop_own(std::size_t worker, std::size_t& out) {
    WorkerQueue& q = queues[worker];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.jobs.empty()) return false;
    out = q.jobs.front();
    q.jobs.pop_front();
    return true;
  }

  bool steal(std::size_t thief, std::size_t& out) {
    const std::size_t n = queues.size();
    for (std::size_t k = 1; k < n; ++k) {
      WorkerQueue& q = queues[(thief + k) % n];
      std::lock_guard<std::mutex> lock(q.mutex);
      if (q.jobs.empty()) continue;
      out = q.jobs.back();  // steal the cold end
      q.jobs.pop_back();
      return true;
    }
    return false;
  }

  void record_error(std::size_t index) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (error == nullptr || index < error_index) {
      error = std::current_exception();
      error_index = index;
    }
  }
};

void worker_loop(RunState& state, std::size_t worker,
                 const std::function<void(std::size_t)>& fn) {
  struct IndexScope {
    int prev;
    explicit IndexScope(std::size_t w) : prev(t_worker_index) {
      t_worker_index = static_cast<int>(w);
    }
    ~IndexScope() { t_worker_index = prev; }
  } index_scope(worker);

  std::size_t job;
  int idle_rounds = 0;
  while (state.remaining.load(std::memory_order_acquire) > 0) {
    if (!state.pop_own(worker, job) && !state.steal(worker, job)) {
      if (worker == 0) return;  // caller thread: nothing left to claim
      // Idle helper: yield first (a queued job may appear within one
      // quantum), then back off to short sleeps so a tail of long jobs is
      // not shadowed by N-1 workers burning the cores the jobs need.
      if (++idle_rounds < 8) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(
            std::min(idle_rounds * 4, 200)));
      }
      continue;
    }
    idle_rounds = 0;
    try {
      fn(job);
    } catch (...) {
      state.record_error(job);
    }
    state.remaining.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace

void SimPool::run_indexed(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers =
      static_cast<std::size_t>(effective_workers(n));
  if (workers == 1) {
    // Serial fast path: run inline, spawn nothing. This is bit-for-bit the
    // pre-pool behaviour and the reference the determinism tests diff
    // against; it also absorbs widths the affinity mask cannot serve.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  RunState state(workers);
  for (std::size_t i = 0; i < n; ++i) {
    state.queues[i % workers].jobs.push_back(i);
  }
  state.remaining.store(n, std::memory_order_release);

  const bool pin = pool_pinning() && numa::pinning_supported();
  std::vector<std::thread> helpers;
  helpers.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    helpers.emplace_back([&state, w, &fn, pin] {
      // Optional NUMA-aware placement: spread helpers round-robin over the
      // allowed cpus so each worker's first-touched arena pages stay
      // local. Failure means "run unpinned" — never an error.
      if (pin) (void)numa::pin_current_thread(static_cast<int>(w));
      worker_loop(state, w, fn);
    });
  }
  worker_loop(state, 0, fn);  // the caller is worker 0 (never pinned)
  for (std::thread& t : helpers) t.join();

  if (state.error != nullptr) std::rethrow_exception(state.error);
}

void SimPool::run_all(std::vector<SimJob> jobs) {
  run_indexed(jobs.size(), [&](std::size_t i) { jobs[i].run(); });
}

}  // namespace locus
