#include "harness/sim_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "support/assert.hpp"

namespace locus {

namespace {

int g_default_threads = 0;  // 0: resolve from the environment

int resolve_env_threads() {
  const char* env = std::getenv("LOCUS_THREADS");
  if (env == nullptr) return 1;
  const int n = std::atoi(env);
  return n > 0 ? n : 1;
}

}  // namespace

void set_sim_threads(int n) { g_default_threads = n > 0 ? n : 0; }

int sim_threads() {
  return g_default_threads > 0 ? g_default_threads : resolve_env_threads();
}

SimPool::SimPool(int threads)
    : threads_(threads > 0 ? threads : sim_threads()) {
  LOCUS_ASSERT(threads_ >= 1);
}

namespace {

/// Shared state of one run_all call. Each worker owns deque[worker]; all
/// deques are guarded by one mutex apiece so steals are safe. `remaining`
/// is the run's termination condition: workers spin between their own
/// deque and steal attempts until every job has been *completed* (not
/// merely claimed), which also keeps a worker alive to steal the tail of a
/// long job list.
struct RunState {
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::size_t> jobs;
  };

  explicit RunState(std::size_t workers) : queues(workers) {}

  std::vector<WorkerQueue> queues;
  std::atomic<std::size_t> remaining{0};

  std::mutex error_mutex;
  std::exception_ptr error;        ///< first failure by job index
  std::size_t error_index = 0;

  bool pop_own(std::size_t worker, std::size_t& out) {
    WorkerQueue& q = queues[worker];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.jobs.empty()) return false;
    out = q.jobs.front();
    q.jobs.pop_front();
    return true;
  }

  bool steal(std::size_t thief, std::size_t& out) {
    const std::size_t n = queues.size();
    for (std::size_t k = 1; k < n; ++k) {
      WorkerQueue& q = queues[(thief + k) % n];
      std::lock_guard<std::mutex> lock(q.mutex);
      if (q.jobs.empty()) continue;
      out = q.jobs.back();  // steal the cold end
      q.jobs.pop_back();
      return true;
    }
    return false;
  }

  void record_error(std::size_t index) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (error == nullptr || index < error_index) {
      error = std::current_exception();
      error_index = index;
    }
  }
};

void worker_loop(RunState& state, std::size_t worker,
                 const std::function<void(std::size_t)>& fn) {
  std::size_t job;
  while (state.remaining.load(std::memory_order_acquire) > 0) {
    if (!state.pop_own(worker, job) && !state.steal(worker, job)) {
      if (worker == 0) return;  // caller thread: nothing left to claim
      std::this_thread::yield();
      continue;
    }
    try {
      fn(job);
    } catch (...) {
      state.record_error(job);
    }
    state.remaining.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace

void SimPool::run_indexed(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ == 1 || n == 1) {
    // Serial fast path: run inline, spawn nothing. This is bit-for-bit the
    // pre-pool behaviour and the reference the determinism tests diff
    // against.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), n);
  RunState state(workers);
  for (std::size_t i = 0; i < n; ++i) {
    state.queues[i % workers].jobs.push_back(i);
  }
  state.remaining.store(n, std::memory_order_release);

  std::vector<std::thread> helpers;
  helpers.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    helpers.emplace_back([&state, w, &fn] { worker_loop(state, w, fn); });
  }
  worker_loop(state, 0, fn);  // the caller is worker 0
  for (std::thread& t : helpers) t.join();

  if (state.error != nullptr) std::rethrow_exception(state.error);
}

void SimPool::run_all(std::vector<SimJob> jobs) {
  run_indexed(jobs.size(), [&](std::size_t i) { jobs[i].run(); });
}

}  // namespace locus
