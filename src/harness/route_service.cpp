#include "harness/route_service.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "circuit/generator.hpp"
#include "harness/sim_pool.hpp"
#include "msg/driver.hpp"
#include "obs/counters.hpp"
#include "shm/shm_router.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace locus {

namespace {

const char* kind_name(RouteRequest::Kind kind) {
  return kind == RouteRequest::Kind::kMp ? "mp" : "shm";
}

bool parse_schedule(const std::string& spec, UpdateSchedule* out) {
  std::istringstream in(spec);
  std::string head;
  if (!std::getline(in, head, ':')) return false;
  std::string a, b, tail;
  if (!std::getline(in, a, ':') || !std::getline(in, b, ':')) return false;
  std::getline(in, tail, ':');
  char* end = nullptr;
  const long va = std::strtol(a.c_str(), &end, 10);
  if (end == a.c_str() || *end != '\0' || va < 0) return false;
  const long vb = std::strtol(b.c_str(), &end, 10);
  if (end == b.c_str() || *end != '\0' || vb < 0) return false;
  if (head == "sender" && tail.empty()) {
    *out = UpdateSchedule::sender(static_cast<std::int32_t>(va),
                                  static_cast<std::int32_t>(vb));
    return true;
  }
  if (head == "receiver" && (tail.empty() || tail == "blocking")) {
    *out = UpdateSchedule::receiver(static_cast<std::int32_t>(va),
                                    static_cast<std::int32_t>(vb),
                                    tail == "blocking");
    return true;
  }
  return false;
}

const Circuit& cached_circuit(const std::string& name, std::uint64_t seed);

}  // namespace

std::string render_request(const RouteRequest& request) {
  std::ostringstream out;
  out << kind_name(request.kind) << ' ' << request.tenant << ' '
      << request.circuit << ' ' << request.seed << ' ' << request.procs << ' '
      << request.schedule_spec;
  return out.str();
}

bool parse_request(const std::string& line, RouteRequest* out,
                   std::string* error) {
  error->clear();
  std::istringstream in(line);
  std::string kind;
  if (!(in >> kind) || kind[0] == '#') return false;  // blank or comment
  RouteRequest request;
  if (kind == "mp") {
    request.kind = RouteRequest::Kind::kMp;
  } else if (kind == "shm") {
    request.kind = RouteRequest::Kind::kShm;
  } else {
    *error = "unknown kind '" + kind + "' (want mp|shm)";
    return false;
  }
  if (!(in >> request.tenant >> request.circuit >> request.seed >>
        request.procs >> request.schedule_spec)) {
    *error = "want: kind tenant circuit seed procs schedule";
    return false;
  }
  if (request.circuit != "tiny" && request.circuit != "bnre" &&
      request.circuit != "mdc") {
    *error = "unknown circuit '" + request.circuit + "' (want tiny|bnre|mdc)";
    return false;
  }
  if (request.procs < 1) {
    *error = "procs must be >= 1";
    return false;
  }
  if (!parse_schedule(request.schedule_spec, &request.schedule)) {
    *error = "bad schedule '" + request.schedule_spec +
             "' (want sender:R:L or receiver:L:T[:blocking])";
    return false;
  }
  std::string extra;
  if (in >> extra) {
    *error = "trailing field '" + extra + "'";
    return false;
  }
  *out = std::move(request);
  return true;
}

std::vector<RouteRequest> parse_request_file(std::istream& in) {
  std::vector<RouteRequest> requests;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    RouteRequest request;
    std::string error;
    if (parse_request(line, &request, &error)) {
      requests.push_back(std::move(request));
    } else if (!error.empty()) {
      throw std::runtime_error("request file line " + std::to_string(lineno) +
                               ": " + error);
    }
  }
  return requests;
}

std::vector<RouteRequest> generate_requests(std::size_t n,
                                            std::uint64_t seed) {
  // A deterministic multi-tenant mix: mostly small MP jobs under varied
  // schedules (the service's bread and butter), a sprinkle of shm runs.
  static const char* kTenants[] = {"acme", "globex", "initech", "umbrella"};
  static const char* kSchedules[] = {
      "sender:2:5",      "sender:5:10",     "sender:10:20",
      "receiver:1:5",    "receiver:2:10",   "receiver:5:2",
      "receiver:1:5:blocking",
  };
  Rng rng(seed);
  std::vector<RouteRequest> requests;
  requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RouteRequest request;
    request.tenant = kTenants[rng() % 4];
    request.circuit = "tiny";
    request.seed = 1 + rng() % 64;
    request.procs = 4;
    if (rng() % 8 == 0) {
      request.kind = RouteRequest::Kind::kShm;
    } else {
      request.kind = RouteRequest::Kind::kMp;
      request.schedule_spec = kSchedules[rng() % 7];
      LOCUS_ASSERT(parse_schedule(request.schedule_spec, &request.schedule));
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

namespace {

/// Read-only circuit cache. Filled on demand under a mutex; jobs only ever
/// read the (immutable) circuits, so sharing one across pooled jobs is the
/// same contract every harness sweep already relies on.
const Circuit& cached_circuit(const std::string& name, std::uint64_t seed) {
  struct Cache {
    std::mutex mutex;
    std::map<std::pair<std::string, std::uint64_t>, Circuit> circuits;
  };
  static Cache* cache = new Cache;
  std::lock_guard<std::mutex> lock(cache->mutex);
  const auto key = std::make_pair(name, name == "tiny" ? seed : 0);
  auto it = cache->circuits.find(key);
  if (it == cache->circuits.end()) {
    Circuit circuit = name == "bnre"  ? make_bnre_like()
                      : name == "mdc" ? make_mdc_like()
                                      : make_tiny_test_circuit(seed);
    it = cache->circuits.emplace(key, std::move(circuit)).first;
  }
  return it->second;
}

/// Runs one request against its own private registry and renders the
/// deterministic result line.
std::string run_one(std::size_t index, const RouteRequest& request,
                    obs::CounterRegistry& reg, std::uint64_t* wires) {
  const std::string prefix = "svc.tenant." + request.tenant + ".";
  reg.add(0, reg.counter(prefix + "jobs"));
  std::ostringstream out;
  out << "job=" << index << ' ' << render_request(request);
  const Circuit& circuit = cached_circuit(request.circuit, request.seed);
  if (request.kind == RouteRequest::Kind::kMp) {
    MpConfig config;
    config.schedule = request.schedule;
    const MpRunResult r =
        run_message_passing(circuit, request.procs, config);
    const auto routed = static_cast<std::uint64_t>(r.work.wires_routed);
    *wires = routed;
    reg.add(0, reg.counter(prefix + "wires"), routed);
    reg.add(0, reg.counter(prefix + "bytes"), r.bytes_transferred);
    reg.add(0, reg.counter(prefix + "sim_ns"),
            static_cast<std::uint64_t>(r.completion_ns));
    out << " height=" << r.circuit_height << " occ=" << r.occupancy_factor
        << " bytes=" << r.bytes_transferred << " t_ns=" << r.completion_ns
        << " wires=" << routed;
  } else {
    ShmConfig config;
    config.procs = request.procs;
    config.capture_trace = false;  // quality/throughput only: no trace RAM
    const ShmRunResult r = run_shared_memory(circuit, config);
    const auto routed = static_cast<std::uint64_t>(r.work.wires_routed);
    *wires = routed;
    reg.add(0, reg.counter(prefix + "wires"), routed);
    reg.add(0, reg.counter(prefix + "sim_ns"),
            static_cast<std::uint64_t>(r.completion_ns));
    out << " height=" << r.circuit_height << " occ=" << r.occupancy_factor
        << " t_ns=" << r.completion_ns << " wires=" << routed;
  }
  return out.str();
}

}  // namespace

RouteServiceReport run_route_service(const std::vector<RouteRequest>& requests,
                                     const RouteServiceOptions& options) {
  LOCUS_ASSERT(options.max_inflight >= 1);
  const std::size_t n = requests.size();
  RouteServiceReport report;
  report.jobs = n;
  report.results.resize(n);

  std::vector<std::unique_ptr<obs::CounterRegistry>> registries(n);
  std::vector<std::uint64_t> wires(n, 0);

  // Admission control: the pool only ever sees one wave of at most
  // max_inflight jobs; `inflight` measures the bound actually held (the
  // high-water mark is published, and asserted on, below).
  std::atomic<std::int64_t> inflight{0};
  std::atomic<std::int64_t> high_water{0};

  SimPool pool(options.width);
  Stopwatch wall;
  const auto wave = static_cast<std::size_t>(options.max_inflight);
  std::size_t waves = 0;
  for (std::size_t start = 0; start < n; start += wave, ++waves) {
    const std::size_t count = std::min(wave, n - start);
    pool.run_indexed(count, [&, start](std::size_t offset) {
      const std::size_t i = start + offset;
      const std::int64_t now = inflight.fetch_add(1) + 1;
      std::int64_t seen = high_water.load();
      while (now > seen && !high_water.compare_exchange_weak(seen, now)) {
      }
      auto reg = std::make_unique<obs::CounterRegistry>();
      wires[i] = 0;
      report.results[i] = run_one(i, requests[i], *reg, &wires[i]);
      registries[i] = std::move(reg);
      inflight.fetch_sub(1);
    });
  }
  report.wall_s = wall.seconds();
  report.inflight_high_water =
      static_cast<std::uint64_t>(high_water.load());
  LOCUS_ASSERT(report.inflight_high_water <=
               static_cast<std::uint64_t>(options.max_inflight));

  // Deterministic artifacts: absorb per-job registries in submission
  // order, fold in service-level totals, render the CSV.
  obs::CounterRegistry merged;
  for (const auto& reg : registries) {
    if (reg != nullptr) merged.merge_from(*reg);
  }
  for (std::uint64_t w : wires) report.wires_routed += w;
  merged.add(0, merged.counter("svc.jobs"), n);
  merged.add(0, merged.counter("svc.wires_routed"), report.wires_routed);
  report.metrics_csv = merged.metrics_csv();

  // Host-side (non-deterministic) counters stay off the deterministic CSV.
  if (options.host_obs != nullptr) {
    obs::CounterRegistry& host = *options.host_obs;
    host.add(0, host.counter("svc.inflight_high_water"),
             report.inflight_high_water);
    host.add(0, host.counter("svc.width"),
             static_cast<std::uint64_t>(pool.threads()));
    host.add(0, host.counter("svc.waves"), waves);
  }
  return report;
}

}  // namespace locus
