#include "support/simd.hpp"

namespace locus::simd {

namespace {
// One process-wide switch shared by every per-TU kernel copy (the kernels
// themselves are static inline and may be compiled with different ISA
// flags; this flag must not be).
bool g_force_scalar = false;
}  // namespace

void set_force_scalar(bool value) { g_force_scalar = value; }
bool force_scalar() { return g_force_scalar; }

// This TU is compiled with the same ISA flags as the explorer's kernels, so
// its per-TU isa_name()/compiled_vector() copies describe the real engine.
const char* active_isa() { return isa_name(); }
bool active_vector() { return compiled_vector(); }

}  // namespace locus::simd
