// Deterministic pseudo-random number generation.
//
// Every stochastic element of the reproduction (synthetic circuit generation,
// tie-breaking noise) flows through these generators so that a fixed seed
// yields byte-identical experiment tables on every platform. We avoid
// std::mt19937 + std::uniform_int_distribution because the distribution
// algorithms are implementation-defined; xoshiro256** plus explicit bounded
// sampling is fully specified here.
#pragma once

#include <cstdint>
#include <limits>

#include "support/assert.hpp"

namespace locus {

/// SplitMix64: used to seed xoshiro and for cheap hash-like mixing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1989'07'05ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t bounded(std::uint64_t bound) {
    LOCUS_ASSERT(bound > 0);
    // Rejection-free fast path is fine for our purposes; debias with one
    // rejection loop to keep the distribution exactly uniform.
    std::uint64_t threshold = (-bound) % bound;
    for (;;) {
      std::uint64_t r = next();
      // 128-bit multiply-high.
      __uint128_t m = static_cast<__uint128_t>(r) * bound;
      auto low = static_cast<std::uint64_t>(m);
      if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    LOCUS_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Geometric-ish sample: smallest k >= 0 with failure prob (1-p)^k, capped.
  int geometric(double p, int cap) {
    LOCUS_ASSERT(p > 0.0 && p <= 1.0);
    int k = 0;
    while (k < cap && !chance(p)) ++k;
    return k;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace locus
