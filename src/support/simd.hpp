// Portable SIMD kernels for the candidate-pricing hot loop.
//
// Four data-parallel primitives (clamp, widen-and-price, prefix sum, row
// add) plus one fused candidate-batch argmin cover everything the explorer's
// structure-of-arrays pricing tail needs. Each kernel has a scalar
// implementation and, when `LOCUS_SIMD_ENABLED` is defined (the LOCUS_SIMD
// CMake option) and the compiler targets a known ISA, a vector
// implementation: AVX2 (8x i32 / 4x i64 lanes), SSE2 (4x i32 / 2x i64), or
// NEON (4x i32 / 2x i64). All kernels are integer-exact — lanes compute the
// same i64 additions the scalar loop would, only reordered across
// *independent* elements, never reassociated within one sum — so vector and
// scalar paths are bit-identical by construction (tests/test_simd.cpp and
// the ExplorerProperty matrix enforce it).
//
// Kernels are `static inline`: every translation unit compiles its own copy
// with its *own* ISA flags (CMake raises -march only on the files that
// include this header), which keeps mixed-ISA builds ODR-clean. The
// force-scalar switch lives in simd.cpp with external linkage so one flag
// governs all copies — bench binaries and tests flip it to time/compare the
// scalar fallback head-to-head inside a single process.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(LOCUS_SIMD_ENABLED)
#if defined(__AVX2__)
#define LOCUS_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || (defined(__x86_64__) && !defined(__AVX2__))
#define LOCUS_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define LOCUS_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace locus::simd {

/// Bench/test hook: when true, every kernel takes its scalar path. Global
/// (not thread-local): flip it only from single-threaded setup code, as the
/// bench and test harnesses do. Defined in simd.cpp so all per-TU kernel
/// copies share one switch.
void set_force_scalar(bool value);
bool force_scalar();

/// ISA of the kernels in the hot pricing TUs: simd.cpp is compiled with the
/// same LOCUS_SIMD_ARCH flags as the explorer (see src/support/CMakeLists),
/// and these have external linkage, so benches and tests report the routing
/// engine's actual ISA rather than their own translation unit's.
const char* active_isa();
bool active_vector();

/// Name of the instruction set this translation unit's kernels use when the
/// scalar switch is off: "avx2", "sse2", "neon" or "scalar".
static inline const char* isa_name() {
#if defined(LOCUS_SIMD_AVX2)
  return "avx2";
#elif defined(LOCUS_SIMD_SSE2)
  return "sse2";
#elif defined(LOCUS_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// True when this TU compiled a vector path (regardless of the runtime
/// force-scalar switch).
static inline bool compiled_vector() {
#if defined(LOCUS_SIMD_AVX2) || defined(LOCUS_SIMD_SSE2) || defined(LOCUS_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

namespace detail {

static inline void clamp_nonneg_scalar(const std::int32_t* in, std::int32_t* out,
                                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = in[i] < 0 ? 0 : in[i];
  }
}

static inline void widen_price_scalar(const std::int32_t* in, std::int64_t* pv,
                                      std::size_t n, bool squared) {
  if (squared) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t v = in[i];
      pv[i] = v * v;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) pv[i] = in[i];
  }
}

static inline void prefix_sum_scalar(const std::int64_t* v, std::int64_t* prefix,
                                     std::size_t n) {
  std::int64_t acc = 0;
  prefix[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += v[i];
    prefix[i + 1] = acc;
  }
}

static inline void add_rows_scalar(const std::int64_t* a, const std::int64_t* b,
                                   std::int64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

static inline std::size_t batch_argmin_scalar(std::int64_t base, const std::int64_t* h,
                                              const std::int64_t* t,
                                              const std::int64_t* jhi,
                                              const std::int64_t* jlo, std::size_t n,
                                              std::int64_t* min_out) {
  std::int64_t best = base + h[0] + t[0] + jhi[0] - jlo[0];
  std::size_t best_k = 0;
  for (std::size_t k = 1; k < n; ++k) {
    const std::int64_t c = base + h[k] + t[k] + jhi[k] - jlo[k];
    if (c < best) {
      best = c;
      best_k = k;
    }
  }
  *min_out = best;
  return best_k;
}

}  // namespace detail

/// out[i] = max(in[i], 0). The routing-decision clamp: drifted message
/// passing views can hold transiently negative cells, and route costs feed
/// a minimization (see grid/cost_array.hpp).
static inline void clamp_nonneg(const std::int32_t* in, std::int32_t* out,
                                std::size_t n) {
#if defined(LOCUS_SIMD_AVX2)
  if (!force_scalar()) {
    const __m256i zero = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                          _mm256_max_epi32(v, zero));
    }
    detail::clamp_nonneg_scalar(in + i, out + i, n - i);
    return;
  }
#elif defined(LOCUS_SIMD_SSE2)
  if (!force_scalar()) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
      // max(v, 0) without SSE4.1: clear lanes whose sign bit is set.
      const __m128i keep = _mm_srai_epi32(v, 31);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_andnot_si128(keep, v));
    }
    detail::clamp_nonneg_scalar(in + i, out + i, n - i);
    return;
  }
#elif defined(LOCUS_SIMD_NEON)
  if (!force_scalar()) {
    const int32x4_t zero = vdupq_n_s32(0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      vst1q_s32(out + i, vmaxq_s32(vld1q_s32(in + i), zero));
    }
    detail::clamp_nonneg_scalar(in + i, out + i, n - i);
    return;
  }
#endif
  detail::clamp_nonneg_scalar(in, out, n);
}

/// pv[i] = (i64)in[i], or (i64)in[i] * in[i] when `squared` (the
/// congestion_power == 2 price). Inputs are already clamped to [0, 2^31),
/// so the squared product is exact in 64 bits.
static inline void widen_price(const std::int32_t* in, std::int64_t* pv,
                               std::size_t n, bool squared) {
#if defined(LOCUS_SIMD_AVX2)
  if (!force_scalar()) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
      __m256i w = _mm256_cvtepi32_epi64(v);
      if (squared) {
        // mul_epi32 multiplies the sign-extended low 32 bits of each 64-bit
        // lane — exactly v*v for the clamped non-negative inputs.
        w = _mm256_mul_epi32(w, w);
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(pv + i), w);
    }
    detail::widen_price_scalar(in + i, pv + i, n - i, squared);
    return;
  }
#elif defined(LOCUS_SIMD_SSE2)
  if (!force_scalar()) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
      if (squared) {
        // Unsigned 32x32->64 on even lanes; odd lanes via a 32-bit shift.
        const __m128i even = _mm_mul_epu32(v, v);
        const __m128i vs = _mm_srli_epi64(v, 32);
        const __m128i odd = _mm_mul_epu32(vs, vs);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(pv + i),
                         _mm_unpacklo_epi64(even, odd));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(pv + i + 2),
                         _mm_unpackhi_epi64(even, odd));
      } else {
        const __m128i sign = _mm_srai_epi32(v, 31);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(pv + i),
                         _mm_unpacklo_epi32(v, sign));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(pv + i + 2),
                         _mm_unpackhi_epi32(v, sign));
      }
    }
    detail::widen_price_scalar(in + i, pv + i, n - i, squared);
    return;
  }
#elif defined(LOCUS_SIMD_NEON)
  if (!force_scalar()) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const int32x4_t v = vld1q_s32(in + i);
      const int32x2_t lo = vget_low_s32(v);
      const int32x2_t hi = vget_high_s32(v);
      if (squared) {
        vst1q_s64(pv + i, vmull_s32(lo, lo));
        vst1q_s64(pv + i + 2, vmull_s32(hi, hi));
      } else {
        vst1q_s64(pv + i, vmovl_s32(lo));
        vst1q_s64(pv + i + 2, vmovl_s32(hi));
      }
    }
    detail::widen_price_scalar(in + i, pv + i, n - i, squared);
    return;
  }
#endif
  detail::widen_price_scalar(in, pv, n, squared);
}

/// prefix[0] = 0; prefix[i+1] = prefix[i] + v[i]. In-register inclusive
/// scan (shift-and-add) plus a broadcast carry between blocks; the adds are
/// the same i64 additions in the same order as the scalar loop, so the sums
/// are identical (integer math — no reassociation rounding exists).
static inline void prefix_sum(const std::int64_t* v, std::int64_t* prefix,
                              std::size_t n) {
#if defined(LOCUS_SIMD_AVX2)
  if (!force_scalar()) {
    prefix[0] = 0;
    const __m256i zero = _mm256_setzero_si256();
    __m256i carry = zero;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
      // x += (x << one lane): [a, b, c, d] + [0, a, b, c]
      __m256i t = _mm256_permute4x64_epi64(x, 0b10010000);
      t = _mm256_blend_epi32(t, zero, 0b00000011);
      x = _mm256_add_epi64(x, t);
      // x += (x << two lanes): [a, a+b, b+c, c+d] + [0, 0, a, a+b]
      t = _mm256_permute4x64_epi64(x, 0b01000000);
      t = _mm256_blend_epi32(t, zero, 0b00001111);
      x = _mm256_add_epi64(x, t);
      x = _mm256_add_epi64(x, carry);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(prefix + i + 1), x);
      carry = _mm256_permute4x64_epi64(x, 0b11111111);
    }
    std::int64_t acc = prefix[i];
    for (; i < n; ++i) {
      acc += v[i];
      prefix[i + 1] = acc;
    }
    return;
  }
#elif defined(LOCUS_SIMD_SSE2)
  if (!force_scalar()) {
    prefix[0] = 0;
    __m128i carry = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
      x = _mm_add_epi64(x, _mm_slli_si128(x, 8));  // [a, a+b]
      x = _mm_add_epi64(x, carry);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(prefix + i + 1), x);
      carry = _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 2, 3, 2));
    }
    std::int64_t acc = prefix[i];
    for (; i < n; ++i) {
      acc += v[i];
      prefix[i + 1] = acc;
    }
    return;
  }
#elif defined(LOCUS_SIMD_NEON)
  if (!force_scalar()) {
    prefix[0] = 0;
    const int64x2_t zero = vdupq_n_s64(0);
    int64x2_t carry = zero;
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      int64x2_t x = vld1q_s64(v + i);
      x = vaddq_s64(x, vextq_s64(zero, x, 1));  // [a, a+b]
      x = vaddq_s64(x, carry);
      vst1q_s64(prefix + i + 1, x);
      carry = vdupq_laneq_s64(x, 1);
    }
    std::int64_t acc = prefix[i];
    for (; i < n; ++i) {
      acc += v[i];
      prefix[i + 1] = acc;
    }
    return;
  }
#endif
  detail::prefix_sum_scalar(v, prefix, n);
}

/// out[i] = a[i] + b[i]. Builds the transposed column prefix sums one
/// channel row at a time (out may alias neither input's tail; the explorer
/// always writes a fresh row).
static inline void add_rows(const std::int64_t* a, const std::int64_t* b,
                            std::int64_t* out, std::size_t n) {
#if defined(LOCUS_SIMD_AVX2)
  if (!force_scalar()) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i y = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                          _mm256_add_epi64(x, y));
    }
    detail::add_rows_scalar(a + i, b + i, out + i, n - i);
    return;
  }
#elif defined(LOCUS_SIMD_SSE2)
  if (!force_scalar()) {
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      const __m128i y = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_add_epi64(x, y));
    }
    detail::add_rows_scalar(a + i, b + i, out + i, n - i);
    return;
  }
#elif defined(LOCUS_SIMD_NEON)
  if (!force_scalar()) {
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      vst1q_s64(out + i, vaddq_s64(vld1q_s64(a + i), vld1q_s64(b + i)));
    }
    detail::add_rows_scalar(a + i, b + i, out + i, n - i);
    return;
  }
#endif
  detail::add_rows_scalar(a, b, out, n);
}

/// Fused per-row window build — one pass instead of three. With
/// p(i) = price(in[i]) (widened, optionally squared):
///   prefix[0]   = 0; prefix[i+1] = prefix[i] + p(i)
///   colt_out[i] = colt_in[i] + p(i)       (next column-prefix row)
/// The priced values themselves are never materialized: a consumer can
/// recover p(i) = prefix[i+1] - prefix[i]. colt_out must not alias
/// in/prefix and may not overlap colt_in's tail; the explorer always
/// writes a fresh row. Arithmetic is the identical i64 addition sequence
/// as the separate widen_price/prefix_sum/add_rows kernels.
static inline void price_scan_add(const std::int32_t* in, bool squared,
                                  std::int64_t* prefix, const std::int64_t* colt_in,
                                  std::int64_t* colt_out, std::size_t n) {
#if defined(LOCUS_SIMD_AVX2)
  if (!force_scalar()) {
    prefix[0] = 0;
    const __m256i zero = _mm256_setzero_si256();
    __m256i carry = zero;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
      __m256i p = _mm256_cvtepi32_epi64(v);
      if (squared) p = _mm256_mul_epi32(p, p);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(colt_out + i),
          _mm256_add_epi64(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(colt_in + i)), p));
      __m256i x = p;
      __m256i t = _mm256_permute4x64_epi64(x, 0b10010000);
      t = _mm256_blend_epi32(t, zero, 0b00000011);
      x = _mm256_add_epi64(x, t);
      t = _mm256_permute4x64_epi64(x, 0b01000000);
      t = _mm256_blend_epi32(t, zero, 0b00001111);
      x = _mm256_add_epi64(x, t);
      x = _mm256_add_epi64(x, carry);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(prefix + i + 1), x);
      carry = _mm256_permute4x64_epi64(x, 0b11111111);
    }
    std::int64_t acc = prefix[i];
    for (; i < n; ++i) {
      const std::int64_t v = in[i];
      const std::int64_t p = squared ? v * v : v;
      colt_out[i] = colt_in[i] + p;
      acc += p;
      prefix[i + 1] = acc;
    }
    return;
  }
#elif defined(LOCUS_SIMD_SSE2)
  if (!force_scalar()) {
    prefix[0] = 0;
    __m128i carry = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
      __m128i plo;
      __m128i phi;
      if (squared) {
        const __m128i even = _mm_mul_epu32(v, v);
        const __m128i vs = _mm_srli_epi64(v, 32);
        const __m128i odd = _mm_mul_epu32(vs, vs);
        plo = _mm_unpacklo_epi64(even, odd);
        phi = _mm_unpackhi_epi64(even, odd);
      } else {
        const __m128i sign = _mm_srai_epi32(v, 31);
        plo = _mm_unpacklo_epi32(v, sign);
        phi = _mm_unpackhi_epi32(v, sign);
      }
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(colt_out + i),
          _mm_add_epi64(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(colt_in + i)), plo));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(colt_out + i + 2),
          _mm_add_epi64(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(colt_in + i + 2)),
              phi));
      __m128i x = _mm_add_epi64(plo, _mm_slli_si128(plo, 8));
      x = _mm_add_epi64(x, carry);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(prefix + i + 1), x);
      carry = _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 2, 3, 2));
      x = _mm_add_epi64(phi, _mm_slli_si128(phi, 8));
      x = _mm_add_epi64(x, carry);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(prefix + i + 3), x);
      carry = _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 2, 3, 2));
    }
    std::int64_t acc = prefix[i];
    for (; i < n; ++i) {
      const std::int64_t v = in[i];
      const std::int64_t p = squared ? v * v : v;
      colt_out[i] = colt_in[i] + p;
      acc += p;
      prefix[i + 1] = acc;
    }
    return;
  }
#elif defined(LOCUS_SIMD_NEON)
  if (!force_scalar()) {
    prefix[0] = 0;
    const int64x2_t zero = vdupq_n_s64(0);
    int64x2_t carry = zero;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const int32x4_t v = vld1q_s32(in + i);
      const int32x2_t lo = vget_low_s32(v);
      const int32x2_t hi = vget_high_s32(v);
      const int64x2_t plo = squared ? vmull_s32(lo, lo) : vmovl_s32(lo);
      const int64x2_t phi = squared ? vmull_s32(hi, hi) : vmovl_s32(hi);
      vst1q_s64(colt_out + i, vaddq_s64(vld1q_s64(colt_in + i), plo));
      vst1q_s64(colt_out + i + 2, vaddq_s64(vld1q_s64(colt_in + i + 2), phi));
      int64x2_t x = vaddq_s64(plo, vextq_s64(zero, plo, 1));
      x = vaddq_s64(x, carry);
      vst1q_s64(prefix + i + 1, x);
      carry = vdupq_laneq_s64(x, 1);
      x = vaddq_s64(phi, vextq_s64(zero, phi, 1));
      x = vaddq_s64(x, carry);
      vst1q_s64(prefix + i + 3, x);
      carry = vdupq_laneq_s64(x, 1);
    }
    std::int64_t acc = prefix[i];
    for (; i < n; ++i) {
      const std::int64_t v = in[i];
      const std::int64_t p = squared ? v * v : v;
      colt_out[i] = colt_in[i] + p;
      acc += p;
      prefix[i + 1] = acc;
    }
    return;
  }
#endif
  std::int64_t acc = 0;
  prefix[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t v = in[i];
    const std::int64_t p = squared ? v * v : v;
    colt_out[i] = colt_in[i] + p;
    acc += p;
    prefix[i + 1] = acc;
  }
}

/// The fused candidate batch: over one channel pair's jog samples,
/// cost[k] = base + h[k] + t[k] + jhi[k] - jlo[k]; returns the *first*
/// index attaining the minimum (the explorer's tie-break is first in
/// enumeration order, and samples are laid out in enumeration order) and
/// writes the minimum to *min_out. Requires n >= 1.
///
/// The vector path keeps a running per-lane (min, index) and resolves
/// cross-lane ties toward the smaller index; within a lane the strict
/// compare keeps the earliest. SSE2 lacks a 64-bit compare, so the x86
/// baseline without AVX2 stays scalar here.
static inline std::size_t batch_argmin(std::int64_t base, const std::int64_t* h,
                                       const std::int64_t* t, const std::int64_t* jhi,
                                       const std::int64_t* jlo, std::size_t n,
                                       std::int64_t* min_out) {
#if defined(LOCUS_SIMD_AVX2)
  if (!force_scalar() && n >= 8) {
    const __m256i vbase = _mm256_set1_epi64x(base);
    __m256i best_v = _mm256_set1_epi64x(INT64_MAX);
    __m256i best_i = _mm256_setzero_si256();
    __m256i idx = _mm256_set_epi64x(3, 2, 1, 0);
    const __m256i four = _mm256_set1_epi64x(4);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      __m256i c = _mm256_add_epi64(
          vbase, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + i)));
      c = _mm256_add_epi64(
          c, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t + i)));
      c = _mm256_add_epi64(
          c, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(jhi + i)));
      c = _mm256_sub_epi64(
          c, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(jlo + i)));
      const __m256i lt = _mm256_cmpgt_epi64(best_v, c);  // c < best_v
      best_v = _mm256_blendv_epi8(best_v, c, lt);
      best_i = _mm256_blendv_epi8(best_i, idx, lt);
      idx = _mm256_add_epi64(idx, four);
    }
    alignas(32) std::int64_t vals[4];
    alignas(32) std::int64_t inds[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(vals), best_v);
    _mm256_store_si256(reinterpret_cast<__m256i*>(inds), best_i);
    std::int64_t best = vals[0];
    std::int64_t best_k = inds[0];
    for (int lane = 1; lane < 4; ++lane) {
      if (vals[lane] < best || (vals[lane] == best && inds[lane] < best_k)) {
        best = vals[lane];
        best_k = inds[lane];
      }
    }
    for (; i < n; ++i) {
      const std::int64_t c = base + h[i] + t[i] + jhi[i] - jlo[i];
      if (c < best) {
        best = c;
        best_k = static_cast<std::int64_t>(i);
      }
    }
    *min_out = best;
    return static_cast<std::size_t>(best_k);
  }
#elif defined(LOCUS_SIMD_NEON)
  if (!force_scalar() && n >= 4) {
    const int64x2_t vbase = vdupq_n_s64(base);
    int64x2_t best_v = vdupq_n_s64(INT64_MAX);
    int64x2_t best_i = vdupq_n_s64(0);
    int64x2_t idx = {0, 1};
    const int64x2_t two = vdupq_n_s64(2);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      int64x2_t c = vaddq_s64(vbase, vld1q_s64(h + i));
      c = vaddq_s64(c, vld1q_s64(t + i));
      c = vaddq_s64(c, vld1q_s64(jhi + i));
      c = vsubq_s64(c, vld1q_s64(jlo + i));
      const uint64x2_t lt = vcgtq_s64(best_v, c);  // c < best_v
      best_v = vbslq_s64(lt, c, best_v);
      best_i = vbslq_s64(lt, idx, best_i);
      idx = vaddq_s64(idx, two);
    }
    std::int64_t vals[2] = {vgetq_lane_s64(best_v, 0), vgetq_lane_s64(best_v, 1)};
    std::int64_t inds[2] = {vgetq_lane_s64(best_i, 0), vgetq_lane_s64(best_i, 1)};
    std::int64_t best = vals[0];
    std::int64_t best_k = inds[0];
    if (vals[1] < best || (vals[1] == best && inds[1] < best_k)) {
      best = vals[1];
      best_k = inds[1];
    }
    for (; i < n; ++i) {
      const std::int64_t c = base + h[i] + t[i] + jhi[i] - jlo[i];
      if (c < best) {
        best = c;
        best_k = static_cast<std::int64_t>(i);
      }
    }
    *min_out = best;
    return static_cast<std::size_t>(best_k);
  }
#endif
  return detail::batch_argmin_scalar(base, h, t, jhi, jlo, n, min_out);
}

/// Running minimum over many candidate batches, carrying a global index.
/// fold() prices one batch — cost[k] = base + h[k] + t[k] + jhi[k] - jlo[k]
/// for k in [0, n) with global candidate indices idx0 + k — into vector
/// lanes; resolve() returns the minimum and the FIRST (smallest) global
/// index attaining it. Because idx0 increases monotonically across fold()
/// calls in enumeration order, a strict per-lane compare keeps the earliest
/// candidate per lane and the cross-lane resolve picks the smallest index
/// among tied lanes — the same tie-break as one scalar first-wins scan.
///
/// The vector path reads whole vectors, up to kPad - 1 elements past n
/// (lanes beyond n are masked to INT64_MAX before comparing): callers must
/// pad each array's allocation to a multiple of kPad. Padding contents are
/// never observed.
class BatchMin {
 public:
#if defined(LOCUS_SIMD_AVX2)
  static constexpr std::size_t kPad = 4;
#elif defined(LOCUS_SIMD_NEON)
  static constexpr std::size_t kPad = 2;
#else
  static constexpr std::size_t kPad = 1;
#endif

  void fold(std::int64_t base, const std::int64_t* h, const std::int64_t* t,
            const std::int64_t* jhi, const std::int64_t* jlo, std::size_t n,
            std::int64_t idx0) {
#if defined(LOCUS_SIMD_AVX2)
    if (!force_scalar()) {
      const __m256i vbase = _mm256_set1_epi64x(base);
      const __m256i maxv = _mm256_set1_epi64x(INT64_MAX);
      const __m256i four = _mm256_set1_epi64x(4);
      __m256i idx =
          _mm256_add_epi64(_mm256_set1_epi64x(idx0), _mm256_set_epi64x(3, 2, 1, 0));
      for (std::size_t i = 0; i < n; i += 4) {
        __m256i c = _mm256_add_epi64(
            vbase, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + i)));
        c = _mm256_add_epi64(
            c, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t + i)));
        c = _mm256_add_epi64(
            c, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(jhi + i)));
        c = _mm256_sub_epi64(
            c, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(jlo + i)));
        if (i + 4 > n) c = _mm256_blendv_epi8(maxv, c, tail_mask(n - i));
        const __m256i lt = _mm256_cmpgt_epi64(best_v_, c);  // c < best_v_
        best_v_ = _mm256_blendv_epi8(best_v_, c, lt);
        best_i_ = _mm256_blendv_epi8(best_i_, idx, lt);
        idx = _mm256_add_epi64(idx, four);
      }
      return;
    }
#elif defined(LOCUS_SIMD_NEON)
    if (!force_scalar()) {
      const int64x2_t vbase = vdupq_n_s64(base);
      const int64x2_t maxv = vdupq_n_s64(INT64_MAX);
      const int64x2_t two = vdupq_n_s64(2);
      int64x2_t idx = vaddq_s64(vdupq_n_s64(idx0), int64x2_t{0, 1});
      for (std::size_t i = 0; i < n; i += 2) {
        int64x2_t c = vaddq_s64(vbase, vld1q_s64(h + i));
        c = vaddq_s64(c, vld1q_s64(t + i));
        c = vaddq_s64(c, vld1q_s64(jhi + i));
        c = vsubq_s64(c, vld1q_s64(jlo + i));
        if (i + 2 > n) c = vbslq_s64(tail_mask(n - i), c, maxv);
        const uint64x2_t lt = vcgtq_s64(best_v_, c);  // c < best_v_
        best_v_ = vbslq_s64(lt, c, best_v_);
        best_i_ = vbslq_s64(lt, idx, best_i_);
        idx = vaddq_s64(idx, two);
      }
      return;
    }
#endif
    for (std::size_t k = 0; k < n; ++k) {
      const std::int64_t c = base + h[k] + t[k] + jhi[k] - jlo[k];
      if (c < sbest_) {
        sbest_ = c;
        sidx_ = idx0 + static_cast<std::int64_t>(k);
      }
    }
  }

  /// Minimum cost and its first global index over everything folded so far.
  /// Meaningful only after at least one fold() of n >= 1.
  void resolve(std::int64_t* min_out, std::int64_t* idx_out) const {
    std::int64_t best = sbest_;
    std::int64_t best_k = sidx_;
#if defined(LOCUS_SIMD_AVX2)
    alignas(32) std::int64_t vals[4];
    alignas(32) std::int64_t inds[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(vals), best_v_);
    _mm256_store_si256(reinterpret_cast<__m256i*>(inds), best_i_);
    for (int lane = 0; lane < 4; ++lane) {
      if (vals[lane] < best || (vals[lane] == best && inds[lane] < best_k)) {
        best = vals[lane];
        best_k = inds[lane];
      }
    }
#elif defined(LOCUS_SIMD_NEON)
    const std::int64_t vals[2] = {vgetq_lane_s64(best_v_, 0),
                                  vgetq_lane_s64(best_v_, 1)};
    const std::int64_t inds[2] = {vgetq_lane_s64(best_i_, 0),
                                  vgetq_lane_s64(best_i_, 1)};
    for (int lane = 0; lane < 2; ++lane) {
      if (vals[lane] < best || (vals[lane] == best && inds[lane] < best_k)) {
        best = vals[lane];
        best_k = inds[lane];
      }
    }
#endif
    *min_out = best;
    *idx_out = best_k;
  }

 private:
#if defined(LOCUS_SIMD_AVX2)
  /// Selects the first `r` (1..3) lanes; the rest fall through to +inf.
  static __m256i tail_mask(std::size_t r) {
    alignas(32) static const std::int64_t kMask[8] = {-1, -1, -1, -1, 0, 0, 0, 0};
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kMask + (4 - r)));
  }
  __m256i best_v_ = _mm256_set1_epi64x(INT64_MAX);
  __m256i best_i_ = _mm256_setzero_si256();
#elif defined(LOCUS_SIMD_NEON)
  static uint64x2_t tail_mask(std::size_t r) {
    static const std::uint64_t kMask[4] = {~0ULL, ~0ULL, 0, 0};
    return vld1q_u64(kMask + (2 - r));
  }
  int64x2_t best_v_ = vdupq_n_s64(INT64_MAX);
  int64x2_t best_i_ = vdupq_n_s64(0);
#endif
  // Scalar state: the fallback path, and the merge base for resolve().
  std::int64_t sbest_ = INT64_MAX;
  std::int64_t sidx_ = 0;
};

}  // namespace locus::simd
