// Page-granularity memory helpers shared by the payload arena (src/sim)
// and the NUMA placement layer (src/shm/numa). Header-only so the lowest
// layers can use them without a new link dependency.
//
// `first_touch` implements the placement half of the first-touch NUMA
// policy: Linux assigns a page's physical frame to the node of the CPU
// that first writes it, so an arena slab touched by the worker that will
// own it lands in that worker's local memory module. On UMA hosts (and CI
// runners) the touch is a cheap page-fault warm-up — it still moves the
// fault cost out of the timed region, which is why the bench warm-up path
// uses it too.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace locus::mem {

inline std::size_t page_size() {
#if defined(__unix__) || defined(__APPLE__)
  static const std::size_t size = [] {
    const long n = ::sysconf(_SC_PAGESIZE);
    return n > 0 ? static_cast<std::size_t>(n) : std::size_t{4096};
  }();
  return size;
#else
  return 4096;
#endif
}

/// Writes one byte per page of [p, p+bytes) so the calling thread is the
/// first toucher. The memory must be writable and not yet hold live data
/// (the touch stores a zero byte; freshly reserved slabs qualify).
inline void first_touch(void* p, std::size_t bytes) {
  if (p == nullptr || bytes == 0) return;
  const std::size_t step = page_size();
  volatile auto* bytes_p = static_cast<unsigned char*>(p);
  for (std::size_t off = 0; off < bytes; off += step) bytes_p[off] = 0;
  bytes_p[bytes - 1] = 0;  // the last page, when bytes is not page-aligned
}

}  // namespace locus::mem
