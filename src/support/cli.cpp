#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/assert.hpp"

namespace locus {

Cli& Cli::flag(std::string name, std::string help, std::string default_value) {
  LOCUS_ASSERT(!flags_.count(name));
  order_.push_back(name);
  flags_[std::move(name)] = Flag{std::move(help), std::move(default_value), false};
  return *this;
}

Cli& Cli::flag(std::string name, std::string help, bool default_value) {
  LOCUS_ASSERT(!flags_.count(name));
  order_.push_back(name);
  flags_[std::move(name)] =
      Flag{std::move(help), default_value ? "true" : "false", true};
  return *this;
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    if (!has_value) {
      if (it->second.is_bool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s requires a value\n", name.c_str());
        return false;
      }
    }
    it->second.value = std::move(value);
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  auto it = flags_.find(name);
  LOCUS_ASSERT_MSG(it != flags_.end(), "unregistered flag queried");
  return it->second.value;
}

bool Cli::get_bool(const std::string& name) const {
  std::string v = get(name);
  return v == "true" || v == "1" || v == "yes";
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

std::string Cli::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const std::string& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.value << ")\n      " << f.help << '\n';
  }
  return os.str();
}

}  // namespace locus
