// Minimal leveled logger.
//
// The experiment harness prints its tables on stdout; diagnostics go to
// stderr through this logger so table output stays machine-parsable.
#pragma once

#include <cstdio>
#include <string>

namespace locus {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Log {
 public:
  static LogLevel& threshold() {
    static LogLevel level = LogLevel::kWarn;
    return level;
  }

  static bool enabled(LogLevel level) {
    return static_cast<int>(level) >= static_cast<int>(threshold());
  }

  template <typename... Args>
  static void write(LogLevel level, const char* fmt, Args... args) {
    if (!enabled(level)) return;
    std::fprintf(stderr, "[%s] ", name(level));
    std::fprintf(stderr, fmt, args...);
    std::fputc('\n', stderr);
  }

 private:
  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
      default: return "?";
    }
  }
};

}  // namespace locus

#define LOCUS_LOG_DEBUG(...) ::locus::Log::write(::locus::LogLevel::kDebug, __VA_ARGS__)
#define LOCUS_LOG_INFO(...) ::locus::Log::write(::locus::LogLevel::kInfo, __VA_ARGS__)
#define LOCUS_LOG_WARN(...) ::locus::Log::write(::locus::LogLevel::kWarn, __VA_ARGS__)
#define LOCUS_LOG_ERROR(...) ::locus::Log::write(::locus::LogLevel::kError, __VA_ARGS__)
