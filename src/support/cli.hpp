// Tiny command-line flag parser for the examples and bench binaries.
//
// Supports --name=value, --name value, and boolean --name forms. Unknown
// flags are an error so typos surface immediately.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace locus {

class Cli {
 public:
  /// Registers a flag with a help string and default value; returns *this.
  Cli& flag(std::string name, std::string help, std::string default_value);
  /// Needed so string-literal defaults do not decay into the bool overload.
  Cli& flag(std::string name, std::string help, const char* default_value) {
    return flag(std::move(name), std::move(help), std::string(default_value));
  }
  Cli& flag(std::string name, std::string help, bool default_value);

  /// Parses argv. Returns false (and prints usage) on error or --help.
  bool parse(int argc, char** argv);

  std::string get(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool is_bool = false;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace locus
