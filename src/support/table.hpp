// ASCII table formatter used by the benchmark harness to print paper-style
// tables (Table 1..6) with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace locus {

enum class Align { kLeft, kRight };

/// Builds a fixed set of columns, accepts rows of stringified cells, and
/// renders an aligned ASCII table. Cells may be added as strings or via the
/// numeric helpers which apply consistent formatting.
class Table {
 public:
  Table& column(std::string header, Align align = Align::kRight);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(std::string value);
  Table& cell(const char* value);
  Table& cell(long long value);
  Table& cell(int value);
  Table& cell(unsigned long long value);
  Table& cell(std::size_t value);
  /// Fixed-precision floating point cell.
  Table& cell(double value, int precision = 3);

  /// Inserts a horizontal separator before the next row.
  Table& separator();

  /// Renders the table (header, separator, rows) as a string.
  std::string render() const;

  /// Renders as comma-separated values (header row + data rows).
  std::string render_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Column {
    std::string header;
    Align align;
  };
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<Column> columns_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// Formats a double with the given number of decimal places.
std::string format_fixed(double value, int precision);

/// Formats a byte count as mega-bytes with three decimals (paper convention).
std::string format_mbytes(std::uint64_t bytes);

}  // namespace locus
