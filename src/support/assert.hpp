// Lightweight always-on assertion macros for invariant checking.
//
// Unlike <cassert>, these fire in release builds too: the simulators in this
// project are deterministic and any invariant violation invalidates every
// number downstream, so we prefer a crash with context over silent corruption.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace locus::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "LOCUS_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace locus::detail

#define LOCUS_ASSERT(expr)                                                \
  do {                                                                    \
    if (!(expr)) [[unlikely]]                                             \
      ::locus::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);   \
  } while (0)

#define LOCUS_ASSERT_MSG(expr, msg)                                       \
  do {                                                                    \
    if (!(expr)) [[unlikely]]                                             \
      ::locus::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
  } while (0)

// Marks unreachable control flow; aborts if ever reached.
#define LOCUS_UNREACHABLE(msg) \
  ::locus::detail::assert_fail("unreachable", __FILE__, __LINE__, (msg))
