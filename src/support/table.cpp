#include "support/table.hpp"

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "support/assert.hpp"

namespace locus {

Table& Table::column(std::string header, Align align) {
  LOCUS_ASSERT_MSG(rows_.empty(), "columns must be declared before rows");
  columns_.push_back(Column{std::move(header), align});
  return *this;
}

Table& Table::row() {
  Row r;
  r.separator_before = pending_separator_;
  pending_separator_ = false;
  rows_.push_back(std::move(r));
  return *this;
}

Table& Table::cell(std::string value) {
  LOCUS_ASSERT_MSG(!rows_.empty(), "cell() before row()");
  LOCUS_ASSERT_MSG(rows_.back().cells.size() < columns_.size(), "too many cells in row");
  rows_.back().cells.push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(long long value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }
Table& Table::cell(unsigned long long value) { return cell(std::to_string(value)); }
Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(format_fixed(value, precision));
}

Table& Table::separator() {
  pending_separator_ = true;
  return *this;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].header.size();
  for (const Row& r : rows_) {
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      if (r.cells[c].size() > widths[c]) widths[c] = r.cells[c].size();
    }
  }

  auto pad = [&](const std::string& s, std::size_t width, Align align) {
    std::string out;
    std::size_t fill = width > s.size() ? width - s.size() : 0;
    if (align == Align::kRight) out.append(fill, ' ');
    out += s;
    if (align == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  std::ostringstream os;
  auto hline = [&] {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };

  hline();
  os << '|';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << ' ' << pad(columns_[c].header, widths[c], Align::kLeft) << " |";
  }
  os << '\n';
  hline();
  for (const Row& r : rows_) {
    if (r.separator_before) hline();
    os << '|';
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& value = c < r.cells.size() ? r.cells[c] : std::string();
      os << ' ' << pad(value, widths[c], columns_[c].align) << " |";
    }
    os << '\n';
  }
  hline();
  return os.str();
}

std::string Table::render_csv() const {
  std::ostringstream os;
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c != 0) os << ',';
    os << quote(columns_[c].header);
  }
  os << '\n';
  for (const Row& r : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c != 0) os << ',';
      if (c < r.cells.size()) os << quote(r.cells[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string format_mbytes(std::uint64_t bytes) {
  return format_fixed(static_cast<double>(bytes) / 1e6, 3);
}

}  // namespace locus
