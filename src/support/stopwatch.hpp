// Wall-clock stopwatch for reporting host-side run durations (the simulated
// times in the tables come from the discrete-event clocks, not from here).
#pragma once

#include <chrono>

namespace locus {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace locus
