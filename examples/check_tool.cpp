// Fault-injection and differential-oracle checking tool.
//
// Runs the src/check subsystem from the command line: cross-check the
// sequential, shared memory, and message passing routers against each other,
// inject network faults described by a --faults spec, or scan the shm
// reference trace for unlocked write conflicts.
//
//   $ ./examples/check_tool oracle --circuit=bnre --procs=4
//   $ ./examples/check_tool oracle --faults=drop:0.01,delay:500
//   $ ./examples/check_tool faults --circuit=tiny --procs=4
//   $ ./examples/check_tool recovery --circuit=tiny --procs=4
//   $ ./examples/check_tool scan --circuit=tiny --procs=16
#include <cstdio>
#include <string>

#include "circuit/generator.hpp"
#include "harness/experiments.hpp"
#include "sim/fault.hpp"
#include "support/cli.hpp"

namespace {

locus::Circuit pick_circuit(const std::string& name) {
  if (name == "mdc") return locus::make_mdc_like();
  if (name == "tiny") return locus::make_tiny_test_circuit();
  if (name != "bnre") {
    std::fprintf(stderr, "unknown circuit '%s', using bnre\n", name.c_str());
  }
  return locus::make_bnre_like();
}

}  // namespace

int main(int argc, char** argv) {
  locus::Cli cli;
  cli.flag("circuit", "bnre | mdc | tiny", "bnre");
  cli.flag("procs", "processors", "4");
  cli.flag("iterations", "routing iterations", "2");
  cli.flag("faults",
           "fault spec, e.g. drop:0.01,delay:500 or "
           "dup:0.1,types:2,seed:7 (oracle/faults modes)",
           "");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().empty()) {
    std::fprintf(stderr, "usage: check_tool oracle|faults|recovery|scan [flags]\n");
    return 1;
  }

  const std::string mode = cli.positional()[0];
  const locus::Circuit circuit = pick_circuit(cli.get("circuit"));
  locus::ExperimentConfig config;
  config.procs = static_cast<std::int32_t>(cli.get_int("procs"));
  config.iterations = static_cast<std::int32_t>(cli.get_int("iterations"));

  std::optional<locus::FaultPlan> faults;
  if (!cli.get("faults").empty()) {
    faults = locus::FaultPlan::parse(cli.get("faults"));
    if (!faults.has_value()) {
      std::fprintf(stderr, "bad --faults spec '%s'\n", cli.get("faults").c_str());
      return 1;
    }
    std::printf("faults: %s\n", faults->describe().c_str());
  }

  if (mode == "oracle") {
    const locus::Table t = run_check_oracle(
        circuit, config, faults.has_value() ? &*faults : nullptr);
    std::printf("differential oracle on %s, %d procs:\n%s", circuit.name().c_str(),
                config.procs, t.render().c_str());
    return 0;
  }
  if (mode == "faults") {
    const locus::Table t = run_check_faults(circuit, config);
    std::printf("fault sweep on %s, %d procs:\n%s", circuit.name().c_str(),
                config.procs, t.render().c_str());
    return 0;
  }
  if (mode == "recovery") {
    const locus::Table t = run_fault_recovery_sweep(circuit, config);
    std::printf("transport recovery sweep on %s, %d procs:\n%s",
                circuit.name().c_str(), config.procs, t.render().c_str());
    return 0;
  }
  if (mode == "scan") {
    const locus::Table t = run_check_trace_scan(circuit, config);
    std::printf("trace conflict scan on %s, %d procs:\n%s",
                circuit.name().c_str(), config.procs, t.render().c_str());
    return 0;
  }
  std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
  return 1;
}
