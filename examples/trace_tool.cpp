// Trace workflow tool (the Tango methodology made concrete): collect a
// shared-reference trace from a shared memory run to a .trc file, then
// analyze it offline through any coherence protocol and line size.
//
//   $ ./examples/trace_tool collect --circuit=bnre --procs=16 --out=run.trc
//   $ ./examples/trace_tool analyze run.trc --line-size=16 --protocol=dragon
#include <cstdio>
#include <string>

#include "assign/assignment.hpp"
#include "circuit/generator.hpp"
#include "coherence/bus.hpp"
#include "coherence/simulator.hpp"
#include "shm/shm_router.hpp"
#include "shm/trace_io.hpp"
#include "support/cli.hpp"

namespace {

locus::ProtocolKind pick_protocol(const std::string& name) {
  if (name == "wbi") return locus::ProtocolKind::kWriteBackInvalidate;
  if (name == "wt") return locus::ProtocolKind::kWriteThrough;
  if (name == "mesi") return locus::ProtocolKind::kMesi;
  if (name == "dragon") return locus::ProtocolKind::kDragon;
  std::fprintf(stderr, "unknown protocol '%s', using wbi\n", name.c_str());
  return locus::ProtocolKind::kWriteBackInvalidate;
}

}  // namespace

int main(int argc, char** argv) {
  locus::Cli cli;
  cli.flag("circuit", "bnre | mdc | tiny (collect)", "bnre");
  cli.flag("procs", "processors", "16");
  cli.flag("out", "output .trc path (collect)", "run.trc");
  cli.flag("line-size", "cache line bytes (analyze)", "8");
  cli.flag("protocol", "wbi | wt | mesi | dragon (analyze)", "wbi");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().empty()) {
    std::fprintf(stderr, "usage: trace_tool collect|analyze [trace.trc] [flags]\n");
    return 1;
  }

  const auto procs = static_cast<std::int32_t>(cli.get_int("procs"));
  const std::string mode = cli.positional()[0];

  if (mode == "collect") {
    locus::Circuit circuit = cli.get("circuit") == "mdc"
                                 ? locus::make_mdc_like()
                             : cli.get("circuit") == "tiny"
                                 ? locus::make_tiny_test_circuit()
                                 : locus::make_bnre_like();
    locus::ShmConfig config;
    config.procs = procs;
    const locus::Partition partition(circuit.channels(), circuit.grids(),
                                     locus::MeshShape::for_procs(procs));
    config.assignment = assign_threshold_cost(circuit, partition, 1000);
    locus::ShmRunResult r = run_shared_memory(circuit, config);
    locus::write_trace_file(cli.get("out"), r.trace);
    std::printf("collected %zu shared references from %s (%d procs) into %s\n",
                r.trace.size(), circuit.name().c_str(), procs,
                cli.get("out").c_str());
    return 0;
  }

  if (mode == "analyze") {
    if (cli.positional().size() < 2) {
      std::fprintf(stderr, "analyze needs a .trc path\n");
      return 1;
    }
    locus::RefTrace trace = locus::read_trace_file(cli.positional()[1]);
    locus::CoherenceParams params;
    params.line_size = static_cast<std::int32_t>(cli.get_int("line-size"));
    params.protocol = pick_protocol(cli.get("protocol"));
    locus::CoherenceSim sim(procs, params);
    sim.replay(trace);
    const locus::CoherenceTraffic& t = sim.traffic();
    locus::BusEstimate bus = locus::estimate_bus(t);
    std::printf("%zu refs, %d-byte lines, protocol %s:\n", trace.size(),
                params.line_size, cli.get("protocol").c_str());
    std::printf("  total traffic : %.3f MB (%.0f%% caused by writes)\n",
                static_cast<double>(t.total_bytes()) / 1e6,
                t.write_fraction() * 100.0);
    std::printf("  cold %.3f / refetch %.3f / fills %.3f / words %.3f / "
                "flushes %.3f MB\n",
                static_cast<double>(t.cold_fetch_bytes) / 1e6,
                static_cast<double>(t.refetch_bytes) / 1e6,
                static_cast<double>(t.write_fetch_bytes) / 1e6,
                static_cast<double>(t.word_write_bytes) / 1e6,
                static_cast<double>(t.read_flush_bytes + t.write_flush_bytes) / 1e6);
    std::printf("  invalidations : %llu, bus busy %.3f s\n",
                static_cast<unsigned long long>(t.invalidation_msgs),
                static_cast<double>(bus.busy_ns()) / 1e9);
    return 0;
  }

  std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
  return 1;
}
