// Interactive tradeoff explorer: run the message passing or shared memory
// implementation with any update schedule, wire assignment, processor count
// and circuit, and print the paper's metrics for that point.
//
//   $ ./examples/strategy_explorer --paradigm=mp --procs=16 --send-rmt=2
//         (--send-loc=10 --assign=tc1000 --circuit=bnre ...)
//   $ ./examples/strategy_explorer --paradigm=shm --procs=16 --line-size=8
#include <cstdio>
#include <string>

#include "assign/locality.hpp"
#include "circuit/generator.hpp"
#include "circuit/io.hpp"
#include "coherence/simulator.hpp"
#include "harness/experiments.hpp"
#include "msg/driver.hpp"
#include "shm/shm_router.hpp"
#include "support/cli.hpp"

namespace {

locus::Circuit pick_circuit(const std::string& name) {
  if (name == "bnre") return locus::make_bnre_like();
  if (name == "mdc") return locus::make_mdc_like();
  if (name == "tiny") return locus::make_tiny_test_circuit();
  return locus::read_circuit_file(name);  // treat as a .ckt path
}

locus::AssignMethod pick_method(const std::string& name) {
  if (name == "rr") return locus::AssignMethod::kRoundRobin;
  if (name == "tc30") return locus::AssignMethod::kThreshold30;
  if (name == "tc1000") return locus::AssignMethod::kThreshold1000;
  if (name == "inf") return locus::AssignMethod::kThresholdInf;
  std::fprintf(stderr, "unknown assignment '%s', using tc1000\n", name.c_str());
  return locus::AssignMethod::kThreshold1000;
}

}  // namespace

int main(int argc, char** argv) {
  locus::Cli cli;
  cli.flag("paradigm", "mp (message passing) or shm (shared memory)", "mp");
  cli.flag("circuit", "bnre | mdc | tiny | path to .ckt", "bnre");
  cli.flag("procs", "number of processors", "16");
  cli.flag("iterations", "routing iterations", "2");
  cli.flag("assign", "rr | tc30 | tc1000 | inf", "tc1000");
  cli.flag("send-rmt", "SendRmtData period in wires (0 = off)", "0");
  cli.flag("send-loc", "SendLocData period in wires (0 = off)", "0");
  cli.flag("req-loc", "ReqLocData request threshold (0 = off)", "0");
  cli.flag("req-rmt", "ReqRmtData touch threshold (0 = off)", "0");
  cli.flag("blocking", "block until requested updates arrive", false);
  cli.flag("line-size", "cache line size in bytes (shm only)", "8");
  if (!cli.parse(argc, argv)) return 1;

  locus::Circuit circuit = pick_circuit(cli.get("circuit"));
  const auto procs = static_cast<std::int32_t>(cli.get_int("procs"));
  const locus::Partition partition(circuit.channels(), circuit.grids(),
                                   locus::MeshShape::for_procs(procs));
  const locus::Assignment assignment =
      make_assignment(circuit, partition, pick_method(cli.get("assign")));

  std::printf("circuit %s, %d procs (%dx%d mesh), assignment %s\n",
              circuit.name().c_str(), procs, partition.mesh().rows,
              partition.mesh().cols, cli.get("assign").c_str());
  std::printf("assignment imbalance: %.2fx by count, %.2fx by cost; "
              "locality estimate %.2f hops\n\n",
              assignment.count_imbalance(), assignment.cost_imbalance(circuit),
              locus::locality_estimate(circuit, assignment, partition));

  if (cli.get("paradigm") == "mp") {
    locus::MpConfig config;
    config.iterations = static_cast<std::int32_t>(cli.get_int("iterations"));
    config.schedule.send_rmt_period =
        static_cast<std::int32_t>(cli.get_int("send-rmt"));
    config.schedule.send_loc_period =
        static_cast<std::int32_t>(cli.get_int("send-loc"));
    config.schedule.req_loc_requests =
        static_cast<std::int32_t>(cli.get_int("req-loc"));
    config.schedule.req_rmt_touches =
        static_cast<std::int32_t>(cli.get_int("req-rmt"));
    config.schedule.blocking_receiver = cli.get_bool("blocking");

    locus::MpRunResult r =
        run_message_passing(circuit, partition, assignment, config);
    std::printf("message passing run:\n");
    std::printf("  circuit height    : %lld tracks\n",
                static_cast<long long>(r.circuit_height));
    std::printf("  occupancy factor  : %lld\n",
                static_cast<long long>(r.occupancy_factor));
    std::printf("  bytes transferred : %.3f MB (%llu packets)\n", r.mbytes(),
                static_cast<unsigned long long>(r.network.packets));
    std::printf("  execution time    : %.3f simulated seconds\n", r.seconds());
    std::printf("  updates suppressed: %lld, requests sent: %lld\n",
                static_cast<long long>(r.updates_suppressed),
                static_cast<long long>(r.requests_sent));
    std::printf("  locality measure  : %.2f hops\n",
                locality_measure(r.routes, assignment, partition));
  } else {
    locus::ShmConfig config;
    config.procs = procs;
    config.iterations = static_cast<std::int32_t>(cli.get_int("iterations"));
    config.assignment = assignment;
    locus::ShmRunResult r = run_shared_memory(circuit, config);

    locus::CoherenceParams params;
    params.line_size = static_cast<std::int32_t>(cli.get_int("line-size"));
    locus::CoherenceSim sim(procs, params);
    sim.replay(r.trace);

    std::printf("shared memory run:\n");
    std::printf("  circuit height    : %lld tracks\n",
                static_cast<long long>(r.circuit_height));
    std::printf("  occupancy factor  : %lld\n",
                static_cast<long long>(r.occupancy_factor));
    std::printf("  execution time    : %.3f simulated seconds\n", r.seconds());
    std::printf("  shared references : %zu traced\n", r.trace.size());
    std::printf("  coherence traffic : %.3f MB at %d-byte lines "
                "(%.0f%% caused by writes)\n",
                static_cast<double>(sim.traffic().total_bytes()) / 1e6,
                params.line_size, sim.traffic().write_fraction() * 100.0);
  }
  return 0;
}
