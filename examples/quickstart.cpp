// Quickstart: generate a bnrE-like circuit, route it sequentially, and print
// the quality metrics the paper reports (circuit height, occupancy factor).
//
//   $ ./examples/quickstart [--iterations=2]
#include <cstdio>

#include "circuit/generator.hpp"
#include "circuit/stats.hpp"
#include "route/render.hpp"
#include "route/sequential.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  locus::Cli cli;
  cli.flag("iterations", "routing iterations (rip-up and reroute passes)", "2");
  if (!cli.parse(argc, argv)) return 1;

  locus::Circuit circuit = locus::make_bnre_like();
  std::printf("%s\n\n", locus::describe(circuit).c_str());

  locus::SequentialParams params;
  params.iterations = static_cast<std::int32_t>(cli.get_int("iterations"));
  locus::SequentialResult result = locus::route_sequential(circuit, params);

  std::printf("sequential LocusRoute, %d iteration(s):\n", params.iterations);
  std::printf("  circuit height   : %lld tracks\n",
              static_cast<long long>(result.circuit_height));
  std::printf("  occupancy factor : %lld\n",
              static_cast<long long>(result.occupancy_factor));
  std::printf("  cost-array probes: %lld\n",
              static_cast<long long>(result.work.probes));
  std::printf("  routes evaluated : %lld\n",
              static_cast<long long>(result.work.routes_evaluated));

  // A window of the final cost array, the paper's Figure 1 in ASCII:
  // digits are wires-per-cell, '.' is empty.
  std::printf("\ncost array, grids 0..79:\n%s",
              locus::render_cost_array(result.cost, 0, 79).c_str());
  return 0;
}
