// Batch routing service front-end (see src/harness/route_service.hpp).
//
// Replays a request file of independent route jobs through the SimPool
// with admission control, reporting per-tenant counters and routes/sec:
//
//   # synthesize a 2000-job multi-tenant request file:
//   route_service --generate=2000 --out=requests.txt
//
//   # replay it at pool width 8, at most 64 jobs in flight:
//   route_service --requests=requests.txt --width=8 --inflight=64
//       --results=results.txt --metrics=metrics.csv
//
// The per-job results and the metrics CSV are byte-identical at any
// --width (the property the scaling/determinism tests enforce); only the
// throughput report depends on the host.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "harness/route_service.hpp"
#include "obs/counters.hpp"
#include "shm/numa.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace locus;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("generate", "synthesize this many requests instead of serving", "0");
  cli.flag("seed", "request-mix seed for --generate", "1");
  cli.flag("out", "request-file path written by --generate", "requests.txt");
  cli.flag("requests", "request file to replay", "");
  cli.flag("width", "pool width (0: LOCUS_THREADS, else serial)", "0");
  cli.flag("inflight", "admission bound: max jobs in flight", "64");
  cli.flag("results", "write per-job result lines here", "");
  cli.flag("metrics", "write the merged per-tenant metrics CSV here", "");
  if (!cli.parse(argc, argv)) return 1;

  const auto generate = static_cast<std::size_t>(cli.get_int("generate"));
  if (generate > 0) {
    std::ofstream out(cli.get("out"));
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.get("out").c_str());
      return 1;
    }
    out << "# kind tenant circuit seed procs schedule\n";
    for (const RouteRequest& request : generate_requests(
             generate, static_cast<std::uint64_t>(cli.get_int("seed")))) {
      out << render_request(request) << '\n';
    }
    std::printf("wrote %zu requests to %s\n", generate, cli.get("out").c_str());
    return 0;
  }

  const std::string path = cli.get("requests");
  if (path.empty()) {
    std::fprintf(stderr, "need --requests=FILE or --generate=N (--help)\n");
    return 1;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }

  std::vector<RouteRequest> requests;
  try {
    requests = parse_request_file(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  RouteServiceOptions options;
  options.width = static_cast<int>(cli.get_int("width"));
  options.max_inflight = static_cast<int>(cli.get_int("inflight"));
  if (options.max_inflight < 1) options.max_inflight = 1;
  obs::CounterRegistry host;
  options.host_obs = &host;

  const RouteServiceReport report = run_route_service(requests, options);

  Table t;
  t.column("metric", Align::kLeft).column("value");
  t.row().cell("jobs").cell(static_cast<long long>(report.jobs));
  t.row().cell("wires routed").cell(static_cast<long long>(report.wires_routed));
  t.row().cell("wall s").cell(report.wall_s, 3);
  t.row().cell("routes/sec").cell(report.routes_per_sec(), 1);
  t.row().cell("inflight high-water")
      .cell(static_cast<long long>(report.inflight_high_water));
  t.row().cell("admission bound")
      .cell(static_cast<long long>(options.max_inflight));
  t.row().cell("cpus available")
      .cell(static_cast<long long>(numa::available_cpus()));
  std::fputs(t.render().c_str(), stdout);

  if (!cli.get("results").empty()) {
    std::ofstream out(cli.get("results"));
    for (const std::string& line : report.results) out << line << '\n';
    std::printf("results: %s\n", cli.get("results").c_str());
  }
  if (!cli.get("metrics").empty()) {
    std::ofstream out(cli.get("metrics"));
    out << report.metrics_csv;
    std::printf("metrics: %s\n", cli.get("metrics").c_str());
  }
  return 0;
}
