// Observability tool: run a router with the obs layer attached and export
// the metrics CSV and (optionally) a Chrome trace JSON that loads in
// Perfetto / chrome://tracing.
//
//   $ ./examples/obs_tool mp --circuit=bnre --procs=4 --trace=mp.json
//   $ ./examples/obs_tool shm --circuit=tiny --trace=shm.json --hop-detail
//   $ ./examples/obs_tool threads-shm --threads=4 --metrics=out.csv
//   $ ./examples/obs_tool summary --circuit=tiny --procs=4
//
// Modes:
//   mp           simulated message passing (receiver- or sender-initiated)
//   shm          deterministic shared memory executor + coherence replay
//   threads-mp   native std::thread message passing (counters only)
//   threads-shm  native std::thread shared memory (counters only)
//   summary      obs counters vs engine statistics cross-check table
#include <cstdio>
#include <string>

#include "circuit/generator.hpp"
#include "coherence/simulator.hpp"
#include "harness/experiments.hpp"
#include "msg/driver.hpp"
#include "msg/threads_mp.hpp"
#include "obs/obs.hpp"
#include "shm/shm_router.hpp"
#include "shm/threads_router.hpp"
#include "support/cli.hpp"

namespace {

locus::Circuit pick_circuit(const std::string& name) {
  if (name == "mdc") return locus::make_mdc_like();
  if (name == "tiny") return locus::make_tiny_test_circuit();
  if (name != "bnre") {
    std::fprintf(stderr, "unknown circuit '%s', using bnre\n", name.c_str());
  }
  return locus::make_bnre_like();
}

/// Writes the CSV/JSON outputs requested on the command line and prints the
/// merged counters to stdout. Returns 0, or 1 on I/O failure.
int emit(const locus::obs::Obs& obs, const std::string& metrics_path,
         const std::string& trace_path) {
  std::printf("%s", obs.counters().metrics_csv().c_str());
  if (!metrics_path.empty()) {
    if (!obs.counters().write_csv(metrics_path)) {
      std::fprintf(stderr, "cannot write metrics to '%s'\n", metrics_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics: %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    if (obs.trace() == nullptr) {
      std::fprintf(stderr, "no trace recorded (mode does not produce one)\n");
      return 1;
    }
    if (!obs.trace()->write_chrome_json(trace_path)) {
      std::fprintf(stderr, "cannot write trace to '%s'\n", trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %s (%zu events)\n", trace_path.c_str(),
                 obs.trace()->size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  locus::Cli cli;
  cli.flag("circuit", "bnre | mdc | tiny", "bnre");
  cli.flag("procs", "processors (mesh for mp, loop count for shm)", "4");
  cli.flag("threads", "worker threads (threads-* modes)", "4");
  cli.flag("iterations", "routing iterations", "2");
  cli.flag("schedule", "mp schedule: receiver | sender", "receiver");
  cli.flag("trace", "write Chrome trace JSON here (mp/shm modes)", "");
  cli.flag("metrics", "write metrics CSV here", "");
  cli.flag("hop-detail", "per-hop trace instants (voluminous)", "false");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: obs_tool mp|shm|threads-mp|threads-shm|summary [flags]\n");
    return 1;
  }

  const std::string mode = cli.positional()[0];
  const locus::Circuit circuit = pick_circuit(cli.get("circuit"));
  const auto procs = static_cast<std::int32_t>(cli.get_int("procs"));
  const auto threads = static_cast<std::int32_t>(cli.get_int("threads"));
  const auto iterations = static_cast<std::int32_t>(cli.get_int("iterations"));
  const std::string trace_path = cli.get("trace");
  const std::string metrics_path = cli.get("metrics");

#if !LOCUS_OBS_ENABLED
  std::fprintf(stderr,
               "warning: built with LOCUS_OBS=OFF; all counters will be zero\n");
#endif

  locus::ExperimentConfig config;
  config.procs = procs;
  config.iterations = iterations;

  if (mode == "summary") {
    const locus::Table t = run_obs_traffic_summary(circuit, config);
    std::printf("obs vs engine statistics on %s, %d procs:\n%s",
                circuit.name().c_str(), procs, t.render().c_str());
    return 0;
  }

  locus::obs::ObsOptions opt;
  opt.trace = !trace_path.empty();
  opt.hop_detail = cli.get_bool("hop-detail");

  if (mode == "mp") {
    locus::obs::Obs obs(opt);
    const locus::Partition partition(circuit.channels(), circuit.grids(),
                                     locus::MeshShape::for_procs(procs));
    const locus::Assignment assignment = make_assignment(
        circuit, partition, locus::AssignMethod::kThreshold1000);
    const locus::UpdateSchedule schedule =
        cli.get("schedule") == "sender" ? locus::UpdateSchedule::sender(2, 5)
                                        : locus::UpdateSchedule::receiver(1, 30);
    locus::MpConfig mp_config = config.mp(schedule);
    mp_config.obs = &obs;
    const locus::MpRunResult r =
        run_message_passing(circuit, partition, assignment, mp_config);
    std::fprintf(stderr, "mp %s on %s: height=%lld bytes=%llu time=%.3fs\n",
                 cli.get("schedule").c_str(), circuit.name().c_str(),
                 static_cast<long long>(r.circuit_height),
                 static_cast<unsigned long long>(r.bytes_transferred),
                 r.seconds());
    return emit(obs, metrics_path, trace_path);
  }
  if (mode == "shm") {
    locus::obs::Obs obs(opt);
    locus::ShmConfig shm_config = config.shm();
    shm_config.obs = &obs;
    const locus::ShmRunResult r = run_shared_memory(circuit, shm_config);
    locus::CoherenceSim sim(procs, locus::CoherenceParams{});
    sim.replay(r.trace);
    sim.publish_obs(obs);
    std::fprintf(stderr, "shm on %s: height=%lld refs=%zu time=%.3fs\n",
                 circuit.name().c_str(), static_cast<long long>(r.circuit_height),
                 r.trace.size(), r.seconds());
    return emit(obs, metrics_path, trace_path);
  }
  if (mode == "threads-mp" || mode == "threads-shm") {
    // Real threads: one registry shard per worker, no simulated clock so no
    // trace. --trace is rejected by emit() for these modes.
    opt.shards = static_cast<std::size_t>(threads);
    opt.trace = false;
    locus::obs::Obs obs(opt);
    if (mode == "threads-mp") {
      const locus::Partition partition(circuit.channels(), circuit.grids(),
                                       locus::MeshShape::for_procs(threads));
      const locus::Assignment assignment = make_assignment(
          circuit, partition, locus::AssignMethod::kThreshold1000);
      locus::ThreadsMpConfig tm_config;
      tm_config.iterations = iterations;
      tm_config.obs = &obs;
      const locus::ThreadsMpResult r =
          run_threads_message_passing(circuit, partition, assignment, tm_config);
      std::fprintf(stderr, "threads-mp on %s: height=%lld msgs=%llu wall=%.3fs\n",
                   circuit.name().c_str(),
                   static_cast<long long>(r.circuit_height),
                   static_cast<unsigned long long>(r.messages_sent),
                   r.wall_seconds);
    } else {
      locus::ThreadsConfig t_config;
      t_config.threads = threads;
      t_config.iterations = iterations;
      t_config.obs = &obs;
      const locus::ThreadsRunResult r =
          run_threads_shared_memory(circuit, t_config);
      std::fprintf(stderr, "threads-shm on %s: height=%lld wall=%.3fs\n",
                   circuit.name().c_str(),
                   static_cast<long long>(r.circuit_height), r.wall_seconds);
    }
    return emit(obs, metrics_path, trace_path);
  }
  std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
  return 1;
}
