// Route a circuit loaded from a .ckt file and print a routing report
// (track profile, quality metrics). If the file argument is omitted, a
// bundled bnrE-like circuit is generated, saved next to the output, and
// routed — so the example is runnable out of the box:
//
//   $ ./examples/route_circuit_file [circuit.ckt] [--iterations=2]
#include <cstdio>
#include <string>

#include "circuit/generator.hpp"
#include "circuit/io.hpp"
#include "circuit/stats.hpp"
#include "route/quality.hpp"
#include "route/sequential.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  locus::Cli cli;
  cli.flag("iterations", "rip-up and reroute passes", "2");
  cli.flag("save", "where to save the generated circuit when no file is given",
           "generated.ckt");
  if (!cli.parse(argc, argv)) return 1;

  locus::Circuit circuit = [&] {
    if (!cli.positional().empty()) {
      return locus::read_circuit_file(cli.positional().front());
    }
    locus::Circuit generated = locus::make_bnre_like();
    locus::write_circuit_file(cli.get("save"), generated);
    std::printf("no input file given: generated %s and saved it to %s\n\n",
                generated.name().c_str(), cli.get("save").c_str());
    return generated;
  }();

  std::printf("%s\n\n", locus::describe(circuit).c_str());

  locus::SequentialParams params;
  params.iterations = static_cast<std::int32_t>(cli.get_int("iterations"));
  locus::SequentialResult result = locus::route_sequential(circuit, params);

  locus::Table report;
  report.column("channel").column("tracks required");
  auto profile = locus::track_profile(result.cost);
  for (std::size_t c = 0; c < profile.size(); ++c) {
    report.row().cell(c).cell(profile[c]);
  }
  std::fputs(report.render().c_str(), stdout);
  std::printf("circuit height: %lld tracks   occupancy factor: %lld\n",
              static_cast<long long>(result.circuit_height),
              static_cast<long long>(result.occupancy_factor));
  return 0;
}
