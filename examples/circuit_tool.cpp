// Circuit generation tool: writes the benchmark circuits (or a custom
// parameterization) to .ckt files and prints their statistics. The files
// under data/ were produced by this tool.
//
//   $ ./examples/circuit_tool --out=data            # bnrE-like + MDC-like
//   $ ./examples/circuit_tool --wires=100 --channels=6 --grids=120
//         (--seed=7 --out=. --name=custom ...)
#include <cstdio>
#include <string>

#include "circuit/generator.hpp"
#include "circuit/io.hpp"
#include "circuit/stats.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  locus::Cli cli;
  cli.flag("out", "output directory", ".");
  cli.flag("name", "custom circuit name (empty: emit the two benchmarks)", "");
  cli.flag("wires", "custom circuit wire count", "100");
  cli.flag("channels", "custom circuit channels", "6");
  cli.flag("grids", "custom circuit routing grids", "120");
  cli.flag("seed", "custom circuit RNG seed", "1");
  if (!cli.parse(argc, argv)) return 1;

  auto emit = [&](const locus::Circuit& circuit, const std::string& file) {
    const std::string path = cli.get("out") + "/" + file;
    locus::write_circuit_file(path, circuit);
    std::printf("wrote %s\n  %s\n", path.c_str(), locus::describe(circuit).c_str());
  };

  if (cli.get("name").empty()) {
    emit(locus::make_bnre_like(), "bnre_like.ckt");
    emit(locus::make_mdc_like(), "mdc_like.ckt");
    return 0;
  }

  locus::GeneratorParams params;
  params.name = cli.get("name");
  params.num_wires = static_cast<std::int32_t>(cli.get_int("wires"));
  params.channels = static_cast<std::int32_t>(cli.get_int("channels"));
  params.grids = static_cast<std::int32_t>(cli.get_int("grids"));
  params.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  emit(locus::generate_circuit(params), params.name + ".ckt");
  return 0;
}
