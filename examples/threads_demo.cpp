// Real-threads routing, both paradigms: the shared memory model (one cost
// array, no locks, dynamic distributed loop) and the message passing model
// (replicated views + update mailboxes) running on actual std::thread
// workers, compared against the deterministic Tango-like executor.
//
//   $ ./examples/threads_demo --threads=4 --circuit=bnre
#include <cstdio>
#include <string>

#include "assign/assignment.hpp"
#include "circuit/generator.hpp"
#include "msg/threads_mp.hpp"
#include "shm/shm_router.hpp"
#include "shm/threads_router.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  locus::Cli cli;
  cli.flag("threads", "worker thread count", "4");
  cli.flag("circuit", "bnre | mdc | tiny", "bnre");
  cli.flag("iterations", "routing iterations", "2");
  if (!cli.parse(argc, argv)) return 1;

  locus::Circuit circuit = cli.get("circuit") == "mdc" ? locus::make_mdc_like()
                           : cli.get("circuit") == "tiny"
                               ? locus::make_tiny_test_circuit()
                               : locus::make_bnre_like();
  const auto threads = static_cast<std::int32_t>(cli.get_int("threads"));
  const auto iterations = static_cast<std::int32_t>(cli.get_int("iterations"));

  locus::ThreadsConfig threads_config;
  threads_config.threads = threads;
  threads_config.iterations = iterations;
  locus::ThreadsRunResult native =
      run_threads_shared_memory(circuit, threads_config);

  locus::ShmConfig tango_config;
  tango_config.procs = threads;
  tango_config.iterations = iterations;
  tango_config.capture_trace = false;
  locus::ShmRunResult tango = run_shared_memory(circuit, tango_config);

  std::printf("circuit %s, %d workers, %d iterations\n\n",
              circuit.name().c_str(), threads, iterations);
  std::printf("native std::thread run (nondeterministic):\n");
  std::printf("  circuit height   : %lld tracks\n",
              static_cast<long long>(native.circuit_height));
  std::printf("  occupancy factor : %lld\n",
              static_cast<long long>(native.occupancy_factor));
  std::printf("  host wall time   : %.3f s\n\n", native.wall_seconds);
  std::printf("deterministic Tango-like executor (same parameters):\n");
  std::printf("  circuit height   : %lld tracks\n",
              static_cast<long long>(tango.circuit_height));
  std::printf("  occupancy factor : %lld\n",
              static_cast<long long>(tango.occupancy_factor));
  std::printf("  simulated time   : %.3f s\n\n", tango.seconds());

  const locus::Partition partition(circuit.channels(), circuit.grids(),
                                   locus::MeshShape::for_procs(threads));
  const locus::Assignment assignment =
      assign_threshold_cost(circuit, partition, 1000);
  locus::ThreadsMpConfig mp_config;
  mp_config.iterations = iterations;
  locus::ThreadsMpResult mp =
      run_threads_message_passing(circuit, partition, assignment, mp_config);
  std::printf("native message passing run (replicated views + mailboxes):\n");
  std::printf("  circuit height   : %lld tracks\n",
              static_cast<long long>(mp.circuit_height));
  std::printf("  update messages  : %llu (%.3f MB equivalent)\n",
              static_cast<unsigned long long>(mp.messages_sent),
              static_cast<double>(mp.bytes_sent) / 1e6);
  std::printf("  host wall time   : %.3f s\n", mp.wall_seconds);
  return 0;
}
